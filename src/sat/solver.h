/**
 * @file
 * Conflict-driven clause-learning (CDCL) SAT solver.
 *
 * This is the in-tree replacement for the off-the-shelf solvers (CVC5,
 * Bitwuzla) the paper discharges its verification conditions to.  The
 * design follows MiniSat: two-watched-literal propagation, first-UIP
 * conflict analysis with recursive clause minimization, EVSIDS variable
 * activities, phase saving, Luby restarts and activity/LBD-based learnt
 * clause database reduction.
 *
 * Two configuration presets (see SolverConfig::baseline() and
 * SolverConfig::simplify()) stand in for the two external solvers in the
 * paper's evaluation; they differ in preprocessing, branching and restart
 * strategy, and like the paper's pair they trade places across benchmark
 * families.
 */

#ifndef QB_SAT_SOLVER_H
#define QB_SAT_SOLVER_H

#include <cstdint>
#include <memory>
#include <vector>

#include "sat/cnf.h"
#include "sat/literal.h"

namespace qb::sat {

/** Outcome of a solve() call. */
enum class SolveResult { Sat, Unsat, Unknown };

/** Tunable solver parameters; see the preset factories. */
struct SolverConfig
{
    /** Use EVSIDS activities (otherwise lowest-index branching). */
    bool useVsids = true;
    /** Remember and reuse the last assigned polarity per variable. */
    bool phaseSaving = true;
    /** Polarity used before any phase has been saved. */
    bool initialPhaseTrue = false;
    /** Per-conflict variable activity decay factor. */
    double varDecay = 0.95;
    /** Per-conflict clause activity decay factor. */
    double clauseDecay = 0.999;
    /** Luby restart unit, in conflicts. */
    std::int64_t restartBase = 100;
    /** Use the Luby sequence (otherwise geometric x1.5). */
    bool lubyRestarts = true;
    /** Reduce the learnt clause database periodically. */
    bool reduceDb = true;
    /** Apply bounded variable elimination before solving. */
    bool preprocess = false;
    /** Abort with Unknown after this many conflicts (-1 = unlimited). */
    std::int64_t conflictBudget = -1;

    /** Plain CDCL: the paper's "CVC5 lane". */
    static SolverConfig baseline();
    /** Preprocessing-heavy CDCL: the paper's "Bitwuzla lane". */
    static SolverConfig simplify();
};

/** Aggregate counters reported by the solver. */
struct SolverStats
{
    std::int64_t decisions = 0;
    std::int64_t propagations = 0;
    std::int64_t conflicts = 0;
    std::int64_t restarts = 0;
    std::int64_t learntClauses = 0;
    std::int64_t removedClauses = 0;
    std::int64_t eliminatedVars = 0;
};

/** CDCL SAT solver over clauses added via addClause()/addCnf(). */
class Solver
{
  public:
    explicit Solver(SolverConfig config = SolverConfig::baseline());
    ~Solver();

    Solver(const Solver &) = delete;
    Solver &operator=(const Solver &) = delete;

    /** Allocate a fresh variable. */
    Var newVar();

    /** Current number of variables. */
    Var numVars() const { return static_cast<Var>(assigns.size()); }

    /**
     * Add a clause.
     *
     * @return false when the formula is already unsatisfiable at the
     *         root level (subsequent solve() calls return Unsat).
     */
    bool addClause(LitVec lits);

    /** Add every clause of @p cnf (variables are created as needed). */
    void addCnf(const Cnf &cnf);

    /** Decide satisfiability of the clauses added so far. */
    SolveResult solve();

    /** Model value of @p v after a Sat answer. */
    LBool modelValue(Var v) const;

    const SolverStats &stats() const { return statistics; }
    const SolverConfig &config() const { return cfg; }

  private:
    struct Clause;
    struct Watcher;
    class VarOrder;

    LBool value(Lit l) const;
    LBool value(Var v) const { return assigns[v]; }
    int decisionLevel() const
    {
        return static_cast<int>(trailLim.size());
    }

    void attachClause(Clause *c);
    void detachClause(Clause *c);
    void uncheckedEnqueue(Lit l, Clause *reason_clause);
    Clause *propagate();
    void analyze(Clause *conflict, LitVec &out_learnt, int &out_btlevel,
                 unsigned &out_lbd);
    bool litRedundant(Lit l, std::uint32_t ab_levels);
    void cancelUntil(int target_level);
    Lit pickBranchLit();
    SolveResult search(std::int64_t conflict_limit);
    void reduceDb();
    void varBumpActivity(Var v);
    void varDecayActivity();
    void claBumpActivity(Clause *c);
    void claDecayActivity();
    unsigned computeLbd(const LitVec &lits);
    bool preprocessEliminate();
    void rebuildWatches();
    static std::int64_t luby(std::int64_t i);

    SolverConfig cfg;
    SolverStats statistics;

    std::vector<Clause *> problemClauses;
    std::vector<Clause *> learntClauses;
    std::vector<std::vector<Watcher>> watches; // indexed by Lit::index()

    std::vector<LBool> assigns;
    std::vector<int> levels;
    std::vector<Clause *> reasons;
    std::vector<bool> polarity;
    std::vector<double> activity;
    std::vector<char> seen;

    std::vector<Lit> trail;
    std::vector<int> trailLim;
    std::vector<Var> analyzeClear;
    std::size_t qhead = 0;

    std::unique_ptr<VarOrder> order;
    double varInc = 1.0;
    double claInc = 1.0;
    bool okay = true;

    std::vector<LBool> model;
    // Eliminated-variable reconstruction stack (var, eliminated clauses).
    std::vector<std::pair<Var, std::vector<LitVec>>> elimStack;
};

/** One-shot convenience: decide a Cnf with the given configuration. */
SolveResult solveCnf(const Cnf &cnf,
                     SolverConfig config = SolverConfig::baseline(),
                     SolverStats *stats_out = nullptr);

} // namespace qb::sat

#endif // QB_SAT_SOLVER_H
