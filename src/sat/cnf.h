/**
 * @file
 * CNF formula container and DIMACS serialization.
 *
 * The Cnf class is the interchange format between the Tseitin encoder,
 * the preprocessor and the solver.  It deliberately stays a dumb data
 * holder; all smarts live in the consumers.
 */

#ifndef QB_SAT_CNF_H
#define QB_SAT_CNF_H

#include <iosfwd>
#include <string>
#include <vector>

#include "sat/literal.h"

namespace qb::sat {

/** A CNF formula: a clause list over numVars variables. */
class Cnf
{
  public:
    /** Allocate a fresh variable and return it. */
    Var newVar() { return numVars_++; }

    /** Ensure at least @p n variables exist. */
    void ensureVars(Var n) { if (n > numVars_) numVars_ = n; }

    /**
     * Add a clause.  Tautologies are dropped and duplicate literals
     * removed; the empty clause marks the formula trivially UNSAT.
     */
    void addClause(LitVec lits);

    /** Convenience single/binary/ternary clause adders. */
    void addUnit(Lit a) { addClause({a}); }
    void addBinary(Lit a, Lit b) { addClause({a, b}); }
    void addTernary(Lit a, Lit b, Lit c) { addClause({a, b, c}); }

    Var numVars() const { return numVars_; }
    std::size_t numClauses() const { return clauses_.size(); }
    const std::vector<LitVec> &clauses() const { return clauses_; }
    /** True when an empty clause was added. */
    bool trivialConflict() const { return trivialConflict_; }

    /** Total number of literal occurrences. */
    std::size_t numLiterals() const;

    /** Check a total/partial assignment against all clauses. */
    bool satisfiedBy(const std::vector<LBool> &assignment) const;

    /** Serialize in DIMACS cnf format (see sat/dimacs.h). */
    std::string toDimacs() const;

    /**
     * Parse DIMACS text with the strict located reader of
     * sat/dimacs.h.
     *
     * @throws FatalError("DIMACS: line:col: ...") on malformed input.
     */
    static Cnf fromDimacs(const std::string &text);

  private:
    Var numVars_ = 0;
    std::vector<LitVec> clauses_;
    bool trivialConflict_ = false;
};

/**
 * Model-validation checker: true iff every clause of @p clauses
 * contains at least one literal assigned true by @p model.  A
 * variable that is Undef or beyond @p model never satisfies a
 * clause, so a partial "model" only validates when the assigned
 * prefix already covers everything - exactly the conservative
 * direction a soundness check wants.  On failure, the index of the
 * first unsatisfied clause is stored through @p failed_clause (when
 * non-null) for diagnostics.
 *
 * This is the independent Sat-verdict cross-check: the fuzz harness
 * (support/fuzz.h) runs it after every Sat answer, qbsat runs it
 * before printing a model, and the sat_test property suites assert
 * it over random formulas for both solver presets.
 */
bool validateModel(const std::vector<LitVec> &clauses,
                   const std::vector<LBool> &model,
                   std::size_t *failed_clause = nullptr);

} // namespace qb::sat

#endif // QB_SAT_CNF_H
