#include "sat/solver.h"

#include <algorithm>
#include <cmath>

#include "support/logging.h"

namespace qb::sat {

SolverConfig
SolverConfig::baseline()
{
    SolverConfig cfg;
    cfg.useVsids = true;
    cfg.phaseSaving = true;
    cfg.initialPhaseTrue = false;
    cfg.lubyRestarts = true;
    cfg.preprocess = false;
    return cfg;
}

SolverConfig
SolverConfig::simplify()
{
    SolverConfig cfg;
    cfg.useVsids = true;
    cfg.phaseSaving = true;
    cfg.initialPhaseTrue = true;
    cfg.lubyRestarts = true;
    cfg.restartBase = 2000; // long runs before restarting
    cfg.varDecay = 0.75;    // aggressive recency bias
    cfg.preprocess = true;
    return cfg;
}

/** Clause with learnt metadata; lits[0..1] are the watched literals. */
struct Solver::Clause
{
    LitVec lits;
    double activity = 0.0;
    unsigned lbd = 0;
    bool learnt = false;
    bool deleted = false;
    /** Adopted from a portfolio sibling via postImport(); retained by
     *  shrinkLearnts() like the locally-learnt glue clauses. */
    bool imported = false;
};

/** Watch-list entry; blocker enables the common fast-path check. */
struct Solver::Watcher
{
    Clause *clause;
    Lit blocker;
};

/** Binary max-heap over variables ordered by EVSIDS activity. */
class Solver::VarOrder
{
  public:
    explicit VarOrder(const std::vector<double> &act) : activity(act) {}

    void
    insert(Var v)
    {
        if (v >= static_cast<Var>(position.size()))
            position.resize(v + 1, -1);
        if (position[v] >= 0)
            return;
        position[v] = static_cast<int>(heap.size());
        heap.push_back(v);
        siftUp(position[v]);
    }

    bool empty() const { return heap.empty(); }

    Var
    removeMax()
    {
        const Var top = heap[0];
        position[top] = -1;
        if (heap.size() > 1) {
            heap[0] = heap.back();
            position[heap[0]] = 0;
            heap.pop_back();
            siftDown(0);
        } else {
            heap.pop_back();
        }
        return top;
    }

    void
    update(Var v)
    {
        if (v < static_cast<Var>(position.size()) && position[v] >= 0)
            siftUp(position[v]);
    }

  private:
    bool
    less(Var a, Var b) const
    {
        return activity[a] < activity[b] ||
               (activity[a] == activity[b] && a > b);
    }

    void
    siftUp(int i)
    {
        while (i > 0) {
            const int parent = (i - 1) / 2;
            if (!less(heap[parent], heap[i]))
                break;
            std::swap(heap[parent], heap[i]);
            position[heap[parent]] = parent;
            position[heap[i]] = i;
            i = parent;
        }
    }

    void
    siftDown(int i)
    {
        const int n = static_cast<int>(heap.size());
        while (true) {
            const int l = 2 * i + 1, r = 2 * i + 2;
            int best = i;
            if (l < n && less(heap[best], heap[l]))
                best = l;
            if (r < n && less(heap[best], heap[r]))
                best = r;
            if (best == i)
                break;
            std::swap(heap[best], heap[i]);
            position[heap[best]] = best;
            position[heap[i]] = i;
            i = best;
        }
    }

    const std::vector<double> &activity;
    std::vector<Var> heap;
    std::vector<int> position;
};

Solver::Solver(SolverConfig config)
    : cfg(config), order(std::make_unique<VarOrder>(activity))
{
}

Solver::~Solver()
{
    for (Clause *c : problemClauses)
        delete c;
    for (Clause *c : learntClauses)
        delete c;
}

Var
Solver::newVar()
{
    const Var v = numVars();
    assigns.push_back(LBool::Undef);
    levels.push_back(0);
    reasons.push_back(nullptr);
    polarity.push_back(cfg.initialPhaseTrue);
    activity.push_back(0.0);
    seen.push_back(0);
    watches.emplace_back();
    watches.emplace_back();
    order->insert(v);
    return v;
}

LBool
Solver::value(Lit l) const
{
    const LBool v = assigns[l.var()];
    return l.sign() ? lboolNeg(v) : v;
}

bool
Solver::addClause(LitVec lits)
{
    qbAssert(decisionLevel() == 0, "addClause above root level");
    if (!okay)
        return false;
    // New clauses must not be simplified against the placeholder
    // assignments bounded variable elimination leaves behind; undo
    // the elimination first (restoreEliminated() re-enters here with
    // the stack already cleared).
    if (!elimStack.empty())
        restoreEliminated();
    for (Lit l : lits) {
        while (l.var() >= numVars())
            newVar();
    }
    std::sort(lits.begin(), lits.end());
    LitVec kept;
    Lit prev = kUndefLit;
    for (Lit l : lits) {
        if (value(l) == LBool::True || l == ~prev)
            return true; // satisfied or tautological
        if (value(l) != LBool::False && l != prev)
            kept.push_back(l);
        prev = l;
    }
    if (kept.empty()) {
        okay = false;
        return false;
    }
    if (kept.size() == 1) {
        uncheckedEnqueue(kept[0], nullptr);
        okay = propagate() == nullptr;
        return okay;
    }
    auto *c = new Clause{std::move(kept)};
    problemClauses.push_back(c);
    attachClause(c);
    return true;
}

void
Solver::addCnf(const Cnf &cnf)
{
    while (numVars() < cnf.numVars())
        newVar();
    if (cnf.trivialConflict())
        okay = false;
    for (const LitVec &c : cnf.clauses()) {
        if (!addClause(c))
            return;
    }
}

void
Solver::attachClause(Clause *c)
{
    qbAssert(c->lits.size() >= 2, "attaching short clause");
    watches[(~c->lits[0]).index()].push_back({c, c->lits[1]});
    watches[(~c->lits[1]).index()].push_back({c, c->lits[0]});
}

void
Solver::detachClause(Clause *c)
{
    for (Lit w : {c->lits[0], c->lits[1]}) {
        auto &list = watches[(~w).index()];
        for (std::size_t i = 0; i < list.size(); ++i) {
            if (list[i].clause == c) {
                list[i] = list.back();
                list.pop_back();
                break;
            }
        }
    }
}

void
Solver::uncheckedEnqueue(Lit l, Clause *reason_clause)
{
    qbAssert(value(l) == LBool::Undef, "enqueue of assigned literal");
    assigns[l.var()] = lboolOf(!l.sign());
    levels[l.var()] = decisionLevel();
    reasons[l.var()] = reason_clause;
    if (cfg.phaseSaving)
        polarity[l.var()] = !l.sign();
    trail.push_back(l);
}

Solver::Clause *
Solver::propagate()
{
    Clause *conflict = nullptr;
    while (qhead < trail.size()) {
        const Lit p = trail[qhead++];
        ++statistics.propagations;
        auto &list = watches[p.index()];
        std::size_t keep = 0;
        std::size_t i = 0;
        for (; i < list.size(); ++i) {
            const Watcher w = list[i];
            if (value(w.blocker) == LBool::True) {
                list[keep++] = w;
                continue;
            }
            Clause &c = *w.clause;
            // Normalize so the false literal ~p sits at lits[1].
            const Lit not_p = ~p;
            if (c.lits[0] == not_p)
                std::swap(c.lits[0], c.lits[1]);
            const Lit first = c.lits[0];
            if (first != w.blocker && value(first) == LBool::True) {
                list[keep++] = {w.clause, first};
                continue;
            }
            // Look for a replacement watch.
            bool moved = false;
            for (std::size_t k = 2; k < c.lits.size(); ++k) {
                if (value(c.lits[k]) != LBool::False) {
                    std::swap(c.lits[1], c.lits[k]);
                    watches[(~c.lits[1]).index()].push_back(
                        {w.clause, first});
                    moved = true;
                    break;
                }
            }
            if (moved)
                continue;
            // Clause is unit or conflicting.
            list[keep++] = {w.clause, first};
            if (value(first) == LBool::False) {
                conflict = w.clause;
                qhead = trail.size();
                ++i;
                break;
            }
            uncheckedEnqueue(first, w.clause);
        }
        for (; i < list.size(); ++i)
            list[keep++] = list[i];
        list.resize(keep);
        if (conflict)
            break;
    }
    return conflict;
}

unsigned
Solver::computeLbd(const LitVec &lits)
{
    // Number of distinct decision levels; small LBD = valuable clause.
    std::vector<int> lvl;
    lvl.reserve(lits.size());
    for (Lit l : lits)
        lvl.push_back(levels[l.var()]);
    std::sort(lvl.begin(), lvl.end());
    return static_cast<unsigned>(
        std::unique(lvl.begin(), lvl.end()) - lvl.begin());
}

void
Solver::analyze(Clause *conflict, LitVec &out_learnt, int &out_btlevel,
                unsigned &out_lbd)
{
    out_learnt.clear();
    out_learnt.push_back(kUndefLit); // slot for the asserting literal
    int counter = 0;
    Lit p = kUndefLit;
    std::size_t index = trail.size();
    Clause *reason_clause = conflict;
    do {
        qbAssert(reason_clause != nullptr, "analyze without reason");
        if (reason_clause->learnt)
            claBumpActivity(reason_clause);
        const std::size_t start = (p == kUndefLit) ? 0 : 1;
        for (std::size_t j = start; j < reason_clause->lits.size(); ++j) {
            const Lit q = reason_clause->lits[j];
            if (!seen[q.var()] && levels[q.var()] > 0) {
                seen[q.var()] = 1;
                varBumpActivity(q.var());
                if (levels[q.var()] >= decisionLevel())
                    ++counter;
                else
                    out_learnt.push_back(q);
            }
        }
        // Pick the next seen literal from the trail.
        while (!seen[trail[index - 1].var()])
            --index;
        p = trail[--index];
        reason_clause = reasons[p.var()];
        seen[p.var()] = 0;
        --counter;
    } while (counter > 0);
    out_learnt[0] = ~p;

    // Recursive minimization: drop literals implied by the rest.  All
    // seen[] marks set here and in litRedundant() are collected so they
    // can be cleared before the next analyze() call.
    analyzeClear.clear();
    for (std::size_t i = 1; i < out_learnt.size(); ++i)
        analyzeClear.push_back(out_learnt[i].var());
    std::uint32_t ab_levels = 0;
    for (std::size_t i = 1; i < out_learnt.size(); ++i)
        ab_levels |= 1u << (levels[out_learnt[i].var()] & 31);
    std::size_t keep = 1;
    for (std::size_t i = 1; i < out_learnt.size(); ++i) {
        const Lit l = out_learnt[i];
        if (reasons[l.var()] == nullptr || !litRedundant(l, ab_levels))
            out_learnt[keep++] = l;
    }
    out_learnt.resize(keep);

    out_btlevel = 0;
    if (out_learnt.size() > 1) {
        std::size_t max_i = 1;
        for (std::size_t i = 2; i < out_learnt.size(); ++i) {
            if (levels[out_learnt[i].var()] >
                levels[out_learnt[max_i].var()])
                max_i = i;
        }
        std::swap(out_learnt[1], out_learnt[max_i]);
        out_btlevel = levels[out_learnt[1].var()];
    }
    out_lbd = computeLbd(out_learnt);
    for (Var v : analyzeClear)
        seen[v] = 0;
}

void
Solver::analyzeFinal(Lit failed)
{
    // Final-conflict analysis (MiniSat's analyzeFinal): @p failed is an
    // assumption whose negation is implied by the other assumptions.
    // Walk the trail backwards from the implication, expanding reasons;
    // every reason-less (decision) literal reached is an assumption
    // participating in the conflict.  Expressed directly in assumption
    // literals rather than as a negated conflict clause.
    conflictCore.clear();
    conflictCore.push_back(failed);
    if (decisionLevel() == 0)
        return;
    seen[failed.var()] = 1;
    for (std::size_t i = trail.size();
         i > static_cast<std::size_t>(trailLim[0]); --i) {
        const Var x = trail[i - 1].var();
        if (!seen[x])
            continue;
        const Clause *reason_clause = reasons[x];
        if (reason_clause == nullptr) {
            // Decisions below the assumption prefix are assumptions.
            conflictCore.push_back(trail[i - 1]);
        } else {
            for (std::size_t j = 1; j < reason_clause->lits.size();
                 ++j) {
                const Var v = reason_clause->lits[j].var();
                if (levels[v] > 0)
                    seen[v] = 1;
            }
        }
        seen[x] = 0;
    }
    seen[failed.var()] = 0;
}

bool
Solver::litRedundant(Lit l, std::uint32_t ab_levels)
{
    // Depth-first check that every antecedent of l is already seen.
    std::vector<Lit> stack{l};
    std::vector<Var> cleared;
    bool redundant = true;
    while (!stack.empty() && redundant) {
        const Lit cur = stack.back();
        stack.pop_back();
        const Clause *r = reasons[cur.var()];
        qbAssert(r != nullptr, "litRedundant without reason");
        for (std::size_t j = 1; j < r->lits.size(); ++j) {
            const Lit q = r->lits[j];
            if (seen[q.var()] || levels[q.var()] == 0)
                continue;
            if (reasons[q.var()] == nullptr ||
                !(ab_levels & (1u << (levels[q.var()] & 31)))) {
                redundant = false;
                break;
            }
            seen[q.var()] = 1;
            cleared.push_back(q.var());
            stack.push_back(q);
        }
    }
    if (!redundant) {
        for (Var v : cleared)
            seen[v] = 0;
    } else {
        // Keep the marks (they short-circuit later redundancy checks)
        // but register them for clearing at the end of analyze().
        analyzeClear.insert(analyzeClear.end(), cleared.begin(),
                            cleared.end());
    }
    return redundant;
}

void
Solver::cancelUntil(int target_level)
{
    if (decisionLevel() <= target_level)
        return;
    for (std::size_t i = trail.size();
         i > static_cast<std::size_t>(trailLim[target_level]); --i) {
        const Var v = trail[i - 1].var();
        assigns[v] = LBool::Undef;
        reasons[v] = nullptr;
        order->insert(v);
    }
    trail.resize(trailLim[target_level]);
    trailLim.resize(target_level);
    qhead = trail.size();
}

Lit
Solver::pickBranchLit()
{
    if (cfg.useVsids) {
        while (!order->empty()) {
            // Peek by removing; re-inserted on backtrack.
            const Var v = order->removeMax();
            if (assigns[v] == LBool::Undef)
                return mkLit(v, !polarity[v]);
        }
        return kUndefLit;
    }
    for (Var v = 0; v < numVars(); ++v) {
        if (assigns[v] == LBool::Undef)
            return mkLit(v, !polarity[v]);
    }
    return kUndefLit;
}

void
Solver::varBumpActivity(Var v)
{
    activity[v] += varInc;
    if (activity[v] > 1e100) {
        for (double &a : activity)
            a *= 1e-100;
        varInc *= 1e-100;
    }
    order->update(v);
}

void
Solver::varDecayActivity()
{
    varInc /= cfg.varDecay;
}

void
Solver::claBumpActivity(Clause *c)
{
    c->activity += claInc;
    if (c->activity > 1e20) {
        for (Clause *lc : learntClauses)
            lc->activity *= 1e-20;
        claInc *= 1e-20;
    }
}

void
Solver::claDecayActivity()
{
    claInc /= cfg.clauseDecay;
}

void
Solver::reduceDb()
{
    // Keep the better half, ranked by LBD then activity; always keep
    // clauses that are reasons for current assignments.
    std::sort(learntClauses.begin(), learntClauses.end(),
              [](const Clause *a, const Clause *b) {
                  if (a->lbd != b->lbd)
                      return a->lbd < b->lbd;
                  return a->activity > b->activity;
              });
    std::vector<Clause *> kept;
    kept.reserve(learntClauses.size());
    const std::size_t limit = learntClauses.size() / 2;
    for (std::size_t i = 0; i < learntClauses.size(); ++i) {
        Clause *c = learntClauses[i];
        const bool locked = reasons[c->lits[0].var()] == c &&
                            value(c->lits[0]) == LBool::True;
        if (i < limit || locked || c->lbd <= 2) {
            kept.push_back(c);
        } else {
            detachClause(c);
            delete c;
            ++statistics.removedClauses;
        }
    }
    learntClauses = std::move(kept);
}

void
Solver::restoreEliminated()
{
    // Undo bounded variable elimination: clear the placeholder
    // assignments, then re-add the original clauses each elimination
    // saved.  The resolvents stay (they are implied), so nothing that
    // was learnt since becomes unsound.  Restoration runs newest
    // elimination first: a variable's saved clauses can mention
    // variables eliminated later, never earlier (those were already
    // gone from the live clause set when it was eliminated).
    qbAssert(decisionLevel() == 0, "restore above root level");
    // Move the stack aside first: addClause() below re-enters the
    // elimStack guard, which must already see it empty.
    const auto saved = std::move(elimStack);
    elimStack.clear();
    for (auto it = saved.rbegin(); it != saved.rend(); ++it) {
        const Var v = it->first;
        assigns[v] = LBool::Undef;
        order->insert(v);
    }
    for (auto it = saved.rbegin(); it != saved.rend(); ++it) {
        for (const LitVec &clause : it->second) {
            if (!addClause(clause))
                return;
        }
    }
    statistics.eliminatedVars = 0;
}

void
Solver::shrinkLearnts(unsigned max_lbd)
{
    qbAssert(decisionLevel() == 0, "shrinkLearnts above root level");
    std::vector<Clause *> kept;
    kept.reserve(learntClauses.size());
    for (Clause *c : learntClauses) {
        const bool locked = reasons[c->lits[0].var()] == c &&
                            value(c->lits[0]) == LBool::True;
        if (locked || c->imported || c->lbd <= max_lbd) {
            kept.push_back(c);
        } else {
            detachClause(c);
            delete c;
            ++statistics.removedClauses;
        }
    }
    learntClauses = std::move(kept);
}

void
Solver::postImport(LitVec clause)
{
    const std::lock_guard<std::mutex> guard(importMutex);
    importInbox.push_back(std::move(clause));
    importPending.store(true, std::memory_order_release);
}

void
Solver::drainImports()
{
    qbAssert(decisionLevel() == 0, "drainImports above root level");
    std::vector<LitVec> batch;
    {
        const std::lock_guard<std::mutex> guard(importMutex);
        batch.swap(importInbox);
        importPending.store(false, std::memory_order_release);
    }
    for (LitVec &clause : batch) {
        if (!okay)
            return;
        addImported(std::move(clause));
    }
}

void
Solver::addImported(LitVec lits)
{
    // Like addClause(), but the result is a marked learnt clause: the
    // exporter derived it, so it must stay eligible for reduction
    // bookkeeping rather than count as problem structure.  Imports are
    // dropped rather than restored against eliminated variables - a
    // preprocessed solver never participates in exchange anyway.
    if (!elimStack.empty())
        return;
    for (Lit l : lits) {
        // The exporting sibling can be ahead in the shared clause
        // stream; a clause about structure this solver has not encoded
        // yet is simply not useful here.
        if (l.var() >= numVars())
            return;
    }
    std::sort(lits.begin(), lits.end());
    LitVec kept;
    Lit prev = kUndefLit;
    for (Lit l : lits) {
        if (value(l) == LBool::True || l == ~prev)
            return; // satisfied or tautological
        if (value(l) != LBool::False && l != prev)
            kept.push_back(l);
        prev = l;
    }
    ++statistics.importedClauses;
    if (kept.empty()) {
        okay = false;
        return;
    }
    if (kept.size() == 1) {
        uncheckedEnqueue(kept[0], nullptr);
        okay = propagate() == nullptr;
        return;
    }
    auto *c = new Clause{std::move(kept)};
    c->learnt = true;
    c->imported = true;
    c->lbd = static_cast<unsigned>(
        std::min<std::size_t>(c->lits.size(), cfg.shareMaxLbd));
    learntClauses.push_back(c);
    attachClause(c);
}

std::int64_t
Solver::luby(std::int64_t i)
{
    // Finite-subsequence trick from the MiniSat sources.
    std::int64_t size = 1, seq = 0;
    while (size < i + 1) {
        ++seq;
        size = 2 * size + 1;
    }
    while (size - 1 != i) {
        size = (size - 1) >> 1;
        --seq;
        i = i % size;
    }
    return std::int64_t{1} << seq;
}

SolveResult
Solver::search(std::int64_t conflict_limit)
{
    std::int64_t conflicts_here = 0;
    LitVec learnt;
    while (true) {
        if (stopFlag != nullptr &&
            stopFlag->load(std::memory_order_relaxed)) {
            cancelUntil(0);
            return SolveResult::Unknown;
        }
        Clause *conflict = propagate();
        if (conflict != nullptr) {
            ++statistics.conflicts;
            ++conflicts_here;
            if (decisionLevel() == 0) {
                // A root-level conflict means the clause database
                // itself is unsatisfiable; latch that for later
                // incremental calls (the falsified clause has already
                // been consumed from the propagation queue, so a
                // fresh search would not rediscover it).
                okay = false;
                return SolveResult::Unsat;
            }
            int bt_level;
            unsigned lbd;
            analyze(conflict, learnt, bt_level, lbd);
            cancelUntil(bt_level);
            // Glue clauses travel: a low-LBD consequence of the clause
            // database is just as valid in a portfolio sibling solving
            // the identical clause stream.
            if (exportHook && lbd <= cfg.shareMaxLbd) {
                exportHook(learnt, lbd);
                ++statistics.exportedClauses;
            }
            if (learnt.size() == 1) {
                uncheckedEnqueue(learnt[0], nullptr);
            } else {
                auto *c = new Clause{learnt, claInc, lbd, true};
                learntClauses.push_back(c);
                ++statistics.learntClauses;
                attachClause(c);
                uncheckedEnqueue(learnt[0], c);
            }
            varDecayActivity();
            claDecayActivity();
            if (cfg.conflictBudget >= 0 &&
                statistics.conflicts - conflictsAtCallStart >=
                    cfg.conflictBudget)
                return SolveResult::Unknown;
        } else {
            if (conflict_limit >= 0 && conflicts_here >= conflict_limit) {
                // Restart: keep the assumption prefix of the trail so
                // the next search round does not re-propagate the
                // whole assumption cone (solve() unwinds to the root
                // before returning to the caller).
                cancelUntil(static_cast<int>(assumptions.size()));
                return SolveResult::Unknown;
            }
            // The legacy one-shot trigger scales with the problem
            // size, which in a long-lived incremental solver lets the
            // learnt database grow with session age and tax every
            // later query.  learntLimitBase selects an absolute limit
            // instead, rate-limited by conflict count so a floor of
            // protected (locked / lbd<=2) clauses cannot force a
            // database sort on every decision.
            if (cfg.reduceDb) {
                if (cfg.learntLimitBase >= 0) {
                    if (learntClauses.size() >
                            static_cast<std::size_t>(
                                cfg.learntLimitBase) +
                                trail.size() &&
                        statistics.conflicts >= nextReduceConflicts) {
                        reduceDb();
                        nextReduceConflicts =
                            statistics.conflicts + 1000;
                    }
                } else if (learntClauses.size() >
                           problemClauses.size() / 3 + 3000 +
                               trail.size()) {
                    reduceDb();
                }
            }
            // Extend the assumption prefix before free decisions: each
            // assumption gets its own decision level, so conflict
            // analysis can attribute an eventual Unsat to the precise
            // subset of assumptions it used.
            Lit next = kUndefLit;
            while (decisionLevel() <
                   static_cast<int>(assumptions.size())) {
                const Lit a = assumptions[decisionLevel()];
                if (value(a) == LBool::True) {
                    // Already implied: dummy level keeps the
                    // level <-> assumption-index correspondence.
                    trailLim.push_back(static_cast<int>(trail.size()));
                } else if (value(a) == LBool::False) {
                    analyzeFinal(a);
                    return SolveResult::Unsat;
                } else {
                    next = a;
                    break;
                }
            }
            if (next == kUndefLit) {
                next = pickBranchLit();
                if (next == kUndefLit) {
                    model.assign(assigns.begin(), assigns.end());
                    return SolveResult::Sat;
                }
            }
            ++statistics.decisions;
            trailLim.push_back(static_cast<int>(trail.size()));
            uncheckedEnqueue(next, nullptr);
        }
    }
}

SolveResult
Solver::solve()
{
    return solve(LitVec{});
}

SolveResult
Solver::solve(const LitVec &assumps)
{
    assumptions = assumps;
    conflictCore.clear();
    conflictsAtCallStart = statistics.conflicts;
    if (!okay)
        return SolveResult::Unsat;
    for (Lit a : assumptions) {
        while (a.var() >= numVars())
            newVar();
    }
    if (propagate() != nullptr) {
        okay = false;
        return SolveResult::Unsat;
    }
    // Bounded variable elimination is a one-shot, whole-database
    // transformation: it is unsound to run once clauses have been
    // learnt or when assumptions may mention eliminated variables, so
    // it only runs on the first assumption-free call - and if an
    // assumption-based call arrives after it has run, the eliminated
    // clauses are restored first (an eliminated variable carries a
    // placeholder assignment that would silently satisfy or falsify
    // assumptions on it).
    if (!assumptions.empty() && !elimStack.empty()) {
        restoreEliminated();
        if (!okay)
            return SolveResult::Unsat;
    }
    if (cfg.preprocess && assumptions.empty() && !preprocessed &&
        learntClauses.empty()) {
        preprocessed = true;
        if (!preprocessEliminate()) {
            okay = false;
            return SolveResult::Unsat;
        }
    }
    if (importPending.load(std::memory_order_acquire)) {
        drainImports();
        if (!okay)
            return SolveResult::Unsat;
    }
    std::int64_t restart = 0;
    double geometric = static_cast<double>(cfg.restartBase);
    while (true) {
        const std::int64_t limit = cfg.lubyRestarts
            ? luby(restart) * cfg.restartBase
            : static_cast<std::int64_t>(geometric);
        const SolveResult result = search(limit);
        if (result != SolveResult::Unknown) {
            if (result == SolveResult::Sat) {
                // Extend the model over eliminated variables.
                for (auto it = elimStack.rbegin(); it != elimStack.rend();
                     ++it) {
                    const Var v = it->first;
                    model[v] = LBool::True;
                    for (const LitVec &c : it->second) {
                        bool sat = false;
                        bool v_neg = false;
                        for (Lit l : c) {
                            if (l.var() == v) {
                                v_neg = l.sign();
                                continue;
                            }
                            if (model[l.var()] == lboolOf(!l.sign())) {
                                sat = true;
                                break;
                            }
                        }
                        if (!sat)
                            model[v] = lboolOf(!v_neg);
                    }
                }
            }
            cancelUntil(0);
            return result;
        }
        if (cfg.conflictBudget >= 0 &&
            statistics.conflicts - conflictsAtCallStart >=
                cfg.conflictBudget) {
            cancelUntil(0);
            return SolveResult::Unknown;
        }
        if (stopFlag != nullptr &&
            stopFlag->load(std::memory_order_relaxed)) {
            cancelUntil(0);
            return SolveResult::Unknown;
        }
        // Restart boundary: adopt whatever the portfolio siblings have
        // shared since the last round.  Imports splice in at the root,
        // where watch setup against a clean trail is trivial.
        if (importPending.load(std::memory_order_acquire)) {
            cancelUntil(0);
            drainImports();
            if (!okay) {
                cancelUntil(0);
                return SolveResult::Unsat;
            }
        }
        ++statistics.restarts;
        ++restart;
        geometric *= 1.5;
    }
}

LBool
Solver::modelValue(Var v) const
{
    if (v < 0 || v >= static_cast<Var>(model.size()))
        return LBool::Undef;
    return model[v];
}

bool
Solver::preprocessEliminate()
{
    // Bounded variable elimination (NiVER-style): resolve away variables
    // whenever doing so does not grow the clause count.  Operates on the
    // root-level problem clauses before any learning has happened.
    qbAssert(decisionLevel() == 0, "preprocess above root level");
    std::vector<LitVec> clauses;
    clauses.reserve(problemClauses.size());
    for (Clause *c : problemClauses) {
        LitVec kept;
        bool satisfied = false;
        for (Lit l : c->lits) {
            if (value(l) == LBool::True) {
                satisfied = true;
                break;
            }
            if (value(l) == LBool::Undef)
                kept.push_back(l);
        }
        if (!satisfied)
            clauses.push_back(std::move(kept));
        detachClause(c);
        delete c;
    }
    problemClauses.clear();

    // Incremental occurrence lists over a tombstoned clause vector.
    constexpr std::size_t occ_limit = 10;
    std::vector<bool> dead(clauses.size(), false);
    std::vector<std::vector<std::size_t>> occ_pos(numVars());
    std::vector<std::vector<std::size_t>> occ_neg(numVars());
    auto index_clause = [&](std::size_t i) {
        for (Lit l : clauses[i])
            (l.sign() ? occ_neg : occ_pos)[l.var()].push_back(i);
    };
    for (std::size_t i = 0; i < clauses.size(); ++i)
        index_clause(i);
    auto live_occurrences = [&](std::vector<std::size_t> &occ) {
        occ.erase(std::remove_if(occ.begin(), occ.end(),
                                 [&](std::size_t i) {
                                     return dead[i];
                                 }),
                  occ.end());
        return occ.size();
    };

    std::vector<bool> frozen(numVars(), false);
    std::vector<Var> queue;
    for (Var v = 0; v < numVars(); ++v)
        queue.push_back(v);
    while (!queue.empty()) {
        const Var v = queue.back();
        queue.pop_back();
        if (frozen[v] || assigns[v] != LBool::Undef)
            continue;
        const std::size_t pos_count = live_occurrences(occ_pos[v]);
        const std::size_t neg_count = live_occurrences(occ_neg[v]);
        if (pos_count == 0 && neg_count == 0)
            continue;
        if (pos_count > occ_limit || neg_count > occ_limit)
            continue;
        const auto pos = occ_pos[v];
        const auto neg = occ_neg[v];
        // Build all non-tautological resolvents; abort if eliminating
        // v would grow the clause count (NiVER criterion).
        std::vector<LitVec> resolvents;
        bool abort_var = false;
        for (std::size_t pi : pos) {
            for (std::size_t ni : neg) {
                LitVec res;
                bool taut = false;
                for (Lit l : clauses[pi])
                    if (l.var() != v)
                        res.push_back(l);
                for (Lit l : clauses[ni])
                    if (l.var() != v)
                        res.push_back(l);
                std::sort(res.begin(), res.end());
                res.erase(std::unique(res.begin(), res.end()),
                          res.end());
                for (std::size_t k = 0; k + 1 < res.size(); ++k) {
                    if (res[k].var() == res[k + 1].var()) {
                        taut = true;
                        break;
                    }
                }
                if (!taut)
                    resolvents.push_back(std::move(res));
                if (resolvents.size() > pos.size() + neg.size()) {
                    abort_var = true;
                    break;
                }
            }
            if (abort_var)
                break;
        }
        if (abort_var) {
            frozen[v] = true;
            continue;
        }
        // Commit: remember v's clauses for model reconstruction and
        // splice in the resolvents.
        std::vector<LitVec> saved;
        for (std::size_t i : pos) {
            saved.push_back(clauses[i]);
            dead[i] = true;
        }
        for (std::size_t i : neg) {
            saved.push_back(clauses[i]);
            dead[i] = true;
        }
        elimStack.emplace_back(v, std::move(saved));
        for (LitVec &r : resolvents) {
            const std::size_t idx = clauses.size();
            clauses.push_back(std::move(r));
            dead.push_back(false);
            index_clause(idx);
            // Touched variables become candidates again.
            for (Lit l : clauses[idx])
                queue.push_back(l.var());
        }
        assigns[v] = LBool::True; // block decisions on v
        levels[v] = 0;
        ++statistics.eliminatedVars;
    }

    // Re-add the surviving clauses through the normal path.
    for (std::size_t i = 0; i < clauses.size(); ++i) {
        if (dead[i])
            continue;
        LitVec &c = clauses[i];
        if (c.empty())
            return false;
        if (c.size() == 1) {
            if (value(c[0]) == LBool::False)
                return false;
            if (value(c[0]) == LBool::Undef)
                uncheckedEnqueue(c[0], nullptr);
            continue;
        }
        auto *cl = new Clause{std::move(c)};
        problemClauses.push_back(cl);
        attachClause(cl);
    }
    return propagate() == nullptr;
}

void
Solver::rebuildWatches()
{
    for (auto &w : watches)
        w.clear();
    for (Clause *c : problemClauses)
        attachClause(c);
    for (Clause *c : learntClauses)
        attachClause(c);
}

SolveResult
solveCnf(const Cnf &cnf, SolverConfig config, SolverStats *stats_out)
{
    Solver solver(config);
    solver.addCnf(cnf);
    const SolveResult result = solver.solve();
    if (stats_out)
        *stats_out = solver.stats();
    return result;
}

} // namespace qb::sat
