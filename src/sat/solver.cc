#include "sat/solver.h"

#include <algorithm>
#include <cmath>
#include <unordered_map>
#include <unordered_set>

#include "support/logging.h"

namespace qb::sat {

SolverConfig
SolverConfig::baseline()
{
    SolverConfig cfg;
    cfg.useVsids = true;
    cfg.phaseSaving = true;
    cfg.initialPhaseTrue = false;
    cfg.lubyRestarts = true;
    cfg.preprocess = false;
    return cfg;
}

SolverConfig
SolverConfig::simplify()
{
    SolverConfig cfg;
    cfg.useVsids = true;
    cfg.phaseSaving = true;
    cfg.initialPhaseTrue = true;
    cfg.lubyRestarts = true;
    cfg.restartBase = 2000; // long runs before restarting
    cfg.varDecay = 0.75;    // aggressive recency bias
    cfg.preprocess = true;
    return cfg;
}

void
SolverStats::accumulate(const SolverStats &other)
{
    decisions += other.decisions;
    propagations += other.propagations;
    binPropagations += other.binPropagations;
    propagationArenaReads += other.propagationArenaReads;
    conflicts += other.conflicts;
    restarts += other.restarts;
    learntClauses += other.learntClauses;
    removedClauses += other.removedClauses;
    eliminatedVars += other.eliminatedVars;
    exportedClauses += other.exportedClauses;
    importedClauses += other.importedClauses;
    importedDropped += other.importedDropped;
    inprocessRuns += other.inprocessRuns;
    vivifiedClauses += other.vivifiedClauses;
    vivifiedLiterals += other.vivifiedLiterals;
    subsumedClauses += other.subsumedClauses;
    strengthenedClauses += other.strengthenedClauses;
    otfStrengthenedClauses += other.otfStrengthenedClauses;
    otfSkipped += other.otfSkipped;
    otfDeferredApplied += other.otfDeferredApplied;
    sccMergedVars += other.sccMergedVars;
    probedFailed += other.probedFailed;
    hyperBinaries += other.hyperBinaries;
    transitiveReduced += other.transitiveReduced;
    importedRetired += other.importedRetired;
    gcRuns += other.gcRuns;
    gcWordsReclaimed += other.gcWordsReclaimed;
    arenaPeakWords += other.arenaPeakWords;
    peakLearnts += other.peakLearnts;
}

namespace {

/** Inverse of Lit::index(). */
inline Lit
litFromIndex(std::size_t idx)
{
    return mkLit(static_cast<Var>(idx >> 1), (idx & 1) != 0);
}

/**
 * Conflict "reference" propagate() reports for a falsified binary
 * clause, which has no arena clause to name: the two conflict
 * literals are parked in Solver::binConflict instead.  Distinct from
 * kRefUndef (so every `conflict != kRefUndef` check still works) and
 * unreachable as a real allocation in any practical arena.
 */
constexpr ClauseRef kBinConflictRef = kRefUndef - 1;

} // namespace

/** Watch-list entry; blocker enables the common fast-path check that
 *  decides most visits without ever dereferencing the arena. */
struct Solver::Watcher
{
    ClauseRef cref;
    Lit blocker;
};

/**
 * Binary watch-list entry: the OTHER literal of the clause rides in
 * the watcher, so visiting a binary clause needs one assignment probe
 * and zero arena reads - implication and conflict alike.  Binary
 * clauses exist ONLY as their two mirrored entries (no arena clause at
 * all): an implication carries the other literal in the Reason word,
 * a conflict is reported through Solver::binConflict, and the learnt
 * flag rides here so shrink-style passes can tell redundant binaries
 * from problem structure.
 */
struct Solver::BinWatcher
{
    Lit other;
    bool learnt;
};

/** Binary max-heap over variables ordered by EVSIDS activity. */
class Solver::VarOrder
{
  public:
    explicit VarOrder(const std::vector<double> &act) : activity(act) {}

    void
    insert(Var v)
    {
        if (v >= static_cast<Var>(position.size()))
            position.resize(v + 1, -1);
        if (position[v] >= 0)
            return;
        position[v] = static_cast<int>(heap.size());
        heap.push_back(v);
        siftUp(position[v]);
    }

    bool empty() const { return heap.empty(); }

    Var
    removeMax()
    {
        const Var top = heap[0];
        position[top] = -1;
        if (heap.size() > 1) {
            heap[0] = heap.back();
            position[heap[0]] = 0;
            heap.pop_back();
            siftDown(0);
        } else {
            heap.pop_back();
        }
        return top;
    }

    void
    update(Var v)
    {
        if (v < static_cast<Var>(position.size()) && position[v] >= 0)
            siftUp(position[v]);
    }

  private:
    bool
    less(Var a, Var b) const
    {
        return activity[a] < activity[b] ||
               (activity[a] == activity[b] && a > b);
    }

    void
    siftUp(int i)
    {
        while (i > 0) {
            const int parent = (i - 1) / 2;
            if (!less(heap[parent], heap[i]))
                break;
            std::swap(heap[parent], heap[i]);
            position[heap[parent]] = parent;
            position[heap[i]] = i;
            i = parent;
        }
    }

    void
    siftDown(int i)
    {
        const int n = static_cast<int>(heap.size());
        while (true) {
            const int l = 2 * i + 1, r = 2 * i + 2;
            int best = i;
            if (l < n && less(heap[best], heap[l]))
                best = l;
            if (r < n && less(heap[best], heap[r]))
                best = r;
            if (best == i)
                break;
            std::swap(heap[best], heap[i]);
            position[heap[best]] = best;
            position[heap[i]] = i;
            i = best;
        }
    }

    const std::vector<double> &activity;
    std::vector<Var> heap;
    std::vector<int> position;
};

Solver::Solver(SolverConfig config)
    : cfg(config), order(std::make_unique<VarOrder>(activity))
{
}

Solver::~Solver() = default;

Var
Solver::newVar()
{
    const Var v = numVars();
    assigns.push_back(LBool::Undef);
    levels.push_back(0);
    reasons.push_back(Reason());
    polarity.push_back(cfg.initialPhaseTrue);
    activity.push_back(0.0);
    seen.push_back(0);
    substituted.push_back(0);
    subst.push_back(mkLit(v, false));
    watches.emplace_back();
    watches.emplace_back();
    binWatches.emplace_back();
    binWatches.emplace_back();
    order->insert(v);
    return v;
}

LBool
Solver::value(Lit l) const
{
    const LBool v = assigns[l.var()];
    return l.sign() ? lboolNeg(v) : v;
}

void
Solver::notePeaks()
{
    statistics.arenaPeakWords =
        std::max<std::int64_t>(statistics.arenaPeakWords,
                               static_cast<std::int64_t>(ca.words()));
    statistics.peakLearnts = std::max<std::int64_t>(
        statistics.peakLearnts,
        static_cast<std::int64_t>(learntClauses.size()));
}

bool
Solver::addClause(LitVec lits)
{
    qbAssert(decisionLevel() == 0, "addClause above root level");
    if (!okay)
        return false;
    // New clauses must not be simplified against the placeholder
    // assignments bounded variable elimination leaves behind; undo
    // the elimination first (restoreEliminated() re-enters here with
    // the stack already cleared).
    if (!elimStack.empty()) {
        restoreEliminated();
        // Restoration re-adds the eliminated clauses through this very
        // function; if that latched root unsatisfiability, the solver
        // is broken and the new clause must not be simplified against
        // or attached to it.
        if (!okay)
            return false;
    }
    for (Lit l : lits) {
        while (l.var() >= numVars())
            newVar();
    }
    // Merged variables are fully retired: route every literal to its
    // equivalence-class representative before simplification.
    if (!eqStack.empty()) {
        for (Lit &l : lits)
            l = representativeOf(l);
    }
    std::sort(lits.begin(), lits.end());
    LitVec kept;
    Lit prev = kUndefLit;
    for (Lit l : lits) {
        if (value(l) == LBool::True || l == ~prev)
            return true; // satisfied or tautological
        if (value(l) != LBool::False && l != prev)
            kept.push_back(l);
        prev = l;
    }
    if (kept.empty()) {
        okay = false;
        return false;
    }
    binaryAnalysisPending = true;
    if (kept.size() == 1) {
        uncheckedEnqueue(kept[0], Reason());
        okay = propagate() == kRefUndef;
        return okay;
    }
    if (kept.size() == 2) {
        // Binary clauses never touch the arena: the mirrored watcher
        // pair IS the clause.
        attachBinary(kept[0], kept[1], /*learnt=*/false);
        return true;
    }
    const ClauseRef cr = ca.alloc(kept, /*learnt=*/false, /*lbd=*/0);
    problemClauses.push_back(cr);
    attachClause(cr);
    notePeaks();
    return true;
}

void
Solver::addCnf(const Cnf &cnf)
{
    while (numVars() < cnf.numVars())
        newVar();
    if (cnf.trivialConflict())
        okay = false;
    for (const LitVec &c : cnf.clauses()) {
        if (!addClause(c))
            return;
    }
}

void
Solver::attachClause(ClauseRef cr)
{
    const Clause &c = ca[cr];
    qbAssert(c.size() >= 3, "attaching short clause");
    watches[(~c[0]).index()].push_back({cr, c[1]});
    watches[(~c[1]).index()].push_back({cr, c[0]});
}

void
Solver::detachClause(ClauseRef cr)
{
    const Clause &c = ca[cr];
    for (Lit w : {c[0], c[1]}) {
        auto &list = watches[(~w).index()];
        for (std::size_t i = 0; i < list.size(); ++i) {
            if (list[i].cref == cr) {
                list[i] = list.back();
                list.pop_back();
                break;
            }
        }
    }
}

bool
Solver::attachBinary(Lit a, Lit b, bool learnt)
{
    qbAssert(a.var() != b.var(), "degenerate binary clause");
    // Duplicate-aware: the graph passes keep the lists set-like, so a
    // re-derived binary (hyper-binary resolution, equivalence
    // rewriting, subsumption shrinks) must not file a second edge
    // pair.  A problem-status duplicate of a learnt binary upgrades
    // both existing entries instead, so no pass can ever retire what
    // is really problem structure.
    auto &fwd = binWatches[(~a).index()];
    for (BinWatcher &w : fwd) {
        if (w.other != b)
            continue;
        if (!learnt && w.learnt) {
            w.learnt = false;
            for (BinWatcher &m : binWatches[(~b).index()]) {
                if (m.other == a)
                    m.learnt = false;
            }
        }
        return false;
    }
    fwd.push_back({b, learnt});
    binWatches[(~b).index()].push_back({a, learnt});
    return true;
}

void
Solver::checkInvariants() const
{
    // Live set + exact arena accounting: everything problemClauses
    // and learntClauses reference, and nothing else, occupies the
    // non-wasted part of the arena.  Binary clauses live only in the
    // binary watch lists, so every arena clause has size >= 3, and no
    // clause may name a variable the SCC pass retired.
    std::unordered_set<ClauseRef> live;
    std::size_t live_words = 0;
    for (const auto *list : {&problemClauses, &learntClauses}) {
        for (const ClauseRef cr : *list) {
            qbAssert(live.insert(cr).second,
                     "invariant: clause listed twice");
            const Clause &c = ca[cr];
            qbAssert(c.size() >= 3,
                     "invariant: short clause in the arena");
            for (const Lit l : c)
                qbAssert(!substituted[l.var()],
                         "invariant: substituted variable in an "
                         "arena clause");
            live_words += ClauseAllocator::kHeaderWords + c.size();
        }
    }
    qbAssert(live_words + ca.wasted() == ca.words(),
             "invariant: arena waste accounting drifted");

    // Every watcher points at a live clause and is filed under one of
    // its two watched slots, with a blocker drawn from the clause.
    // Counting per (clause, slot) makes the exactly-twice property of
    // attachClause() checkable in one scan.
    std::unordered_map<ClauseRef, unsigned> seen_watch;
    std::size_t long_watchers = 0;
    for (std::size_t idx = 0; idx < watches.size(); ++idx) {
        for (const Watcher &w : watches[idx]) {
            ++long_watchers;
            qbAssert(live.count(w.cref),
                     "invariant: watcher on freed clause");
            const Clause &c = ca[w.cref];
            qbAssert((~c[0]).index() == idx || (~c[1]).index() == idx,
                     "invariant: watcher filed under an unwatched "
                     "literal");
            bool blocker_in_clause = false;
            for (unsigned i = 0; i < c.size() && !blocker_in_clause;
                 ++i)
                blocker_in_clause = c[i] == w.blocker;
            qbAssert(blocker_in_clause,
                     "invariant: blocker not in its clause");
            ++seen_watch[w.cref];
        }
    }
    qbAssert(long_watchers == 2 * live.size(),
             "invariant: long watcher count != 2 * live clauses");
    for (const ClauseRef cr : live)
        qbAssert(seen_watch[cr] == 2,
                 "invariant: live clause not watched exactly twice");

    // The binary implication graph: every directed edge a→b (filed
    // under a's index with b inlined) appears once, never self-loops,
    // never touches a substituted variable, and has its mirror edge
    // ¬b→¬a filed with the SAME learnt flag - the two entries of one
    // clause must agree on everything.
    std::unordered_map<std::uint64_t, bool> edges;
    for (std::size_t idx = 0; idx < binWatches.size(); ++idx) {
        const Lit trigger = litFromIndex(idx);
        for (const BinWatcher &w : binWatches[idx]) {
            qbAssert(w.other.var() != trigger.var(),
                     "invariant: self or tautological binary");
            qbAssert(!substituted[trigger.var()] &&
                         !substituted[w.other.var()],
                     "invariant: substituted variable in a binary "
                     "watch list");
            const std::uint64_t key =
                (static_cast<std::uint64_t>(idx) << 32) |
                static_cast<std::uint64_t>(w.other.index());
            qbAssert(edges.emplace(key, w.learnt).second,
                     "invariant: duplicate binary edge");
        }
    }
    for (const auto &[key, learnt] : edges) {
        // Edge idx→other mirrors as (other^1)→(idx^1): negating a
        // literal flips the low bit of its index.
        const std::uint64_t mirror =
            (((key & 0xFFFFFFFFULL) ^ 1ULL) << 32) |
            ((key >> 32) ^ 1ULL);
        const auto it = edges.find(mirror);
        qbAssert(it != edges.end(),
                 "invariant: binary edge missing its mirror");
        qbAssert(it->second == learnt,
                 "invariant: binary mirror learnt-flag mismatch");
    }

    // Trail/reason consistency.  Long reasons keep the implied
    // literal normalized into slot 0; a binary reason is
    // self-contained - its word holds the OTHER literal of the
    // clause, which must be false for as long as the implication
    // stands (the other literal was falsified at or below the
    // implied literal's level).
    for (const Lit l : trail) {
        qbAssert(value(l) == LBool::True,
                 "invariant: false literal on the trail");
        qbAssert(!substituted[l.var()],
                 "invariant: substituted variable on the trail");
        const Reason r = reasons[l.var()];
        if (r.isUndef())
            continue;
        if (r.isBinary()) {
            qbAssert(value(r.otherLit()) == LBool::False,
                     "invariant: binary reason's other literal not "
                     "false");
            continue;
        }
        qbAssert(live.count(r.clauseRef()),
                 "invariant: reason clause was freed");
        const Clause &c = ca[r.clauseRef()];
        qbAssert(c[0] == l,
                 "invariant: reason clause does not imply its "
                 "literal");
    }

    // Substituted variables are fully retired: unassigned,
    // reason-less, and absent from every watch list (their clauses
    // were rewritten onto the representatives).
    for (Var v = 0; v < numVars(); ++v) {
        if (!substituted[v])
            continue;
        qbAssert(assigns[v] == LBool::Undef,
                 "invariant: substituted variable is assigned");
        qbAssert(reasons[v].isUndef(),
                 "invariant: substituted variable has a reason");
        for (const bool s : {false, true}) {
            const Lit l = mkLit(v, s);
            qbAssert(watches[l.index()].empty(),
                     "invariant: substituted variable still watched");
            qbAssert(binWatches[l.index()].empty(),
                     "invariant: substituted variable still in the "
                     "binary graph");
        }
    }
}

void
Solver::removeClause(ClauseRef cr)
{
    detachClause(cr);
    purgeDeferredOtf(cr);
    ca.free(cr);
    ++statistics.removedClauses;
}

bool
Solver::locked(ClauseRef cr) const
{
    // Only long clauses live in the arena, and long-clause
    // propagation normalizes the implied literal into slot 0.
    const Clause &c = ca[cr];
    const Reason r = reasons[c[0].var()];
    return r.isClause() && r.clauseRef() == cr &&
           value(c[0]) == LBool::True;
}

void
Solver::uncheckedEnqueue(Lit l, Reason reason)
{
    qbAssert(value(l) == LBool::Undef, "enqueue of assigned literal");
    assigns[l.var()] = lboolOf(!l.sign());
    levels[l.var()] = decisionLevel();
    reasons[l.var()] = reason;
    if (cfg.phaseSaving)
        polarity[l.var()] = !l.sign();
    trail.push_back(l);
}

ClauseRef
Solver::propagate()
{
    ClauseRef conflict = kRefUndef;
    const std::uint64_t derefs_before = ca.derefCount();
    while (qhead < trail.size()) {
        const Lit p = trail[qhead++];
        ++statistics.propagations;
        // Binary clauses first: the implied literal is inlined in the
        // watcher, so this whole loop performs zero arena reads -
        // every binary is decided from the watcher pair and the
        // assignment array alone.  Running them before the long
        // clauses also finds the cheap implications (and conflicts)
        // before any clause memory is touched.
        {
            const auto &bins = binWatches[p.index()];
            for (const BinWatcher w : bins) {
                const LBool v = value(w.other);
                if (v == LBool::True)
                    continue;
                if (v == LBool::False) {
                    // No arena clause to name: report the sentinel
                    // and park the two literals for analyze().
                    binConflict[0] = ~p;
                    binConflict[1] = w.other;
                    conflict = kBinConflictRef;
                    qhead = trail.size();
                    break;
                }
                ++statistics.binPropagations;
                uncheckedEnqueue(w.other, Reason::binary(~p));
            }
            if (conflict != kRefUndef)
                break;
        }
        auto &list = watches[p.index()];
        std::size_t keep = 0;
        std::size_t i = 0;
        for (; i < list.size(); ++i) {
            const Watcher w = list[i];
            // Blocker fast path: one literal probe, no arena access.
            if (value(w.blocker) == LBool::True) {
                list[keep++] = w;
                continue;
            }
            Clause &c = ca[w.cref];
            // Normalize so the false literal ~p sits at lits[1].
            const Lit not_p = ~p;
            if (c[0] == not_p)
                std::swap(c[0], c[1]);
            const Lit first = c[0];
            if (first != w.blocker && value(first) == LBool::True) {
                list[keep++] = {w.cref, first};
                continue;
            }
            // Look for a replacement watch.
            bool moved = false;
            const unsigned size = c.size();
            for (unsigned k = 2; k < size; ++k) {
                if (value(c[k]) != LBool::False) {
                    std::swap(c[1], c[k]);
                    watches[(~c[1]).index()].push_back(
                        {w.cref, first});
                    moved = true;
                    break;
                }
            }
            if (moved)
                continue;
            // Clause is unit or conflicting.
            list[keep++] = {w.cref, first};
            if (value(first) == LBool::False) {
                conflict = w.cref;
                qhead = trail.size();
                ++i;
                break;
            }
            uncheckedEnqueue(first, Reason::clause(w.cref));
        }
        for (; i < list.size(); ++i)
            list[keep++] = list[i];
        list.resize(keep);
        if (conflict != kRefUndef)
            break;
    }
    statistics.propagationArenaReads += static_cast<std::int64_t>(
        ca.derefCount() - derefs_before);
    return conflict;
}

/**
 * The LONG reason clause of assigned variable @p v, with the implied
 * literal in slot 0 - the layout conflict analysis iterates from
 * index 1 under, established by the propagation loop itself.  Binary
 * reasons never reach here: their single antecedent literal is read
 * straight out of the Reason word.
 */
Clause &
Solver::reasonClause(Var v)
{
    const Reason r = reasons[v];
    qbAssert(r.isClause(), "reasonClause without long reason");
    Clause &c = ca[r.clauseRef()];
    qbAssert(c[0].var() == v, "unnormalized long reason");
    return c;
}

unsigned
Solver::computeLbd(const LitVec &lits)
{
    // Number of distinct decision levels; small LBD = valuable clause.
    std::vector<int> lvl;
    lvl.reserve(lits.size());
    for (Lit l : lits)
        lvl.push_back(levels[l.var()]);
    std::sort(lvl.begin(), lvl.end());
    return static_cast<unsigned>(
        std::unique(lvl.begin(), lvl.end()) - lvl.begin());
}

void
Solver::analyze(ClauseRef conflict, LitVec &out_learnt, int &out_btlevel,
                unsigned &out_lbd)
{
    out_learnt.clear();
    out_learnt.push_back(kUndefLit); // slot for the asserting literal
    otfCandidates.clear();
    int counter = 0;
    Lit p = kUndefLit;
    std::size_t index = trail.size();
    do {
        // Resolution source: the conflict first, then each pivot's
        // reason.  A binary source has no arena clause - its
        // antecedent literals come from binConflict (both literals)
        // or the pivot's Reason word (the single other literal).
        Lit bin_tail[2];
        const Lit *tail = nullptr;
        std::size_t tail_size = 0;
        Clause *rc = nullptr;
        ClauseRef rc_ref = kRefUndef;
        if (p == kUndefLit) {
            if (conflict == kBinConflictRef) {
                bin_tail[0] = binConflict[0];
                bin_tail[1] = binConflict[1];
                tail = bin_tail;
                tail_size = 2;
            } else {
                rc = &ca[conflict];
                rc_ref = conflict;
            }
        } else {
            const Reason r = reasons[p.var()];
            qbAssert(!r.isUndef(), "analyze without reason");
            if (r.isBinary()) {
                bin_tail[0] = r.otherLit();
                tail = bin_tail;
                tail_size = 1;
            } else {
                rc = &reasonClause(p.var());
                rc_ref = r.clauseRef();
            }
        }
        if (rc != nullptr) {
            if (rc->learnt())
                claBumpActivity(*rc);
            const std::size_t start = (p == kUndefLit) ? 0 : 1;
            tail = rc->begin() + start;
            tail_size = rc->size() - start;
        }
        unsigned root_lits = 0;
        for (std::size_t j = 0; j < tail_size; ++j) {
            const Lit q = tail[j];
            if (levels[q.var()] == 0)
                ++root_lits;
            if (!seen[q.var()] && levels[q.var()] > 0) {
                seen[q.var()] = 1;
                varBumpActivity(q.var());
                if (levels[q.var()] >= decisionLevel())
                    ++counter;
                else
                    out_learnt.push_back(q);
            }
        }
        // On-the-fly self-subsumption (Han/Somenzi-style): the
        // running resolvent is `counter` conflict-level literals
        // plus the out_learnt tail.  Right after resolving reason rc
        // on pivot p, the resolvent contains all of rc except the
        // pivot and rc's root-false literals (rc's other literals
        // were assigned before p, so none has been resolved away
        // yet); if the sizes match it IS exactly that set, i.e. an
        // implied clause subsuming rc with the pivot removed.
        // Remember (rc, pivot); search() strengthens the arena in
        // place once backtracking has unlocked the antecedent.
        // Binary reasons have nothing to strengthen.
        if (cfg.otfSubsume && p != kUndefLit && rc != nullptr &&
            rc->size() >= 3 &&
            otfCandidates.size() < cfg.otfMaxAntecedents) {
            const std::size_t resolvent =
                static_cast<std::size_t>(counter) +
                out_learnt.size() - 1;
            if (resolvent + root_lits + 1 == rc->size())
                otfCandidates.push_back({rc_ref, (*rc)[0]});
        }
        // Pick the next seen literal from the trail.
        while (!seen[trail[index - 1].var()])
            --index;
        p = trail[--index];
        seen[p.var()] = 0;
        --counter;
    } while (counter > 0);
    out_learnt[0] = ~p;

    // Recursive minimization: drop literals implied by the rest.  All
    // seen[] marks set here and in litRedundant() are collected so they
    // can be cleared before the next analyze() call.
    analyzeClear.clear();
    for (std::size_t i = 1; i < out_learnt.size(); ++i)
        analyzeClear.push_back(out_learnt[i].var());
    std::uint32_t ab_levels = 0;
    for (std::size_t i = 1; i < out_learnt.size(); ++i)
        ab_levels |= 1u << (levels[out_learnt[i].var()] & 31);
    std::size_t keep = 1;
    for (std::size_t i = 1; i < out_learnt.size(); ++i) {
        const Lit l = out_learnt[i];
        if (reasons[l.var()].isUndef() ||
            !litRedundant(l, ab_levels))
            out_learnt[keep++] = l;
    }
    out_learnt.resize(keep);

    out_btlevel = 0;
    if (out_learnt.size() > 1) {
        std::size_t max_i = 1;
        for (std::size_t i = 2; i < out_learnt.size(); ++i) {
            if (levels[out_learnt[i].var()] >
                levels[out_learnt[max_i].var()])
                max_i = i;
        }
        std::swap(out_learnt[1], out_learnt[max_i]);
        out_btlevel = levels[out_learnt[1].var()];
    }
    out_lbd = computeLbd(out_learnt);
    for (Var v : analyzeClear)
        seen[v] = 0;
}

void
Solver::analyzeFinal(Lit failed)
{
    // Final-conflict analysis (MiniSat's analyzeFinal): @p failed is an
    // assumption whose negation is implied by the other assumptions.
    // Walk the trail backwards from the implication, expanding reasons;
    // every reason-less (decision) literal reached is an assumption
    // participating in the conflict.  Expressed directly in assumption
    // literals rather than as a negated conflict clause.
    conflictCore.clear();
    conflictCore.push_back(failed);
    if (decisionLevel() > 0) {
        seen[failed.var()] = 1;
        for (std::size_t i = trail.size();
             i > static_cast<std::size_t>(trailLim[0]); --i) {
            const Var x = trail[i - 1].var();
            if (!seen[x])
                continue;
            const Reason r = reasons[x];
            if (r.isUndef()) {
                // Decisions below the assumption prefix are
                // assumptions.
                conflictCore.push_back(trail[i - 1]);
            } else if (r.isBinary()) {
                const Var v = r.otherLit().var();
                if (levels[v] > 0)
                    seen[v] = 1;
            } else {
                const Clause &rc = reasonClause(x);
                const unsigned size = rc.size();
                for (std::size_t j = 1; j < size; ++j) {
                    const Var v = rc[j].var();
                    if (levels[v] > 0)
                        seen[v] = 1;
                }
            }
            seen[x] = 0;
        }
        seen[failed.var()] = 0;
    }
    // The search runs over class representatives; the caller reasons
    // in its own (original) literals.  Translate the core back: an
    // original assumption belongs whenever its representative is in
    // the representative-level core.  This can only widen the core
    // (several originals may share a representative), never miss -
    // every core literal was an assumption, and every assumption is
    // some original's image.
    if (!eqStack.empty() && !originalAssumptions.empty()) {
        std::unordered_set<std::int32_t> core;
        for (const Lit l : conflictCore)
            core.insert(l.x);
        LitVec translated;
        for (const Lit orig : originalAssumptions) {
            if (core.count(representativeOf(orig).x) != 0)
                translated.push_back(orig);
        }
        conflictCore = std::move(translated);
    }
}

bool
Solver::litRedundant(Lit l, std::uint32_t ab_levels)
{
    // Depth-first check that every antecedent of l is already seen.
    std::vector<Lit> stack{l};
    std::vector<Var> cleared;
    bool redundant = true;
    // One antecedent literal: already-seen/root literals pass, a
    // decision or level outside the learnt clause's level set fails,
    // anything else is explored in turn.
    const auto visit = [this, &ab_levels, &cleared,
                        &stack](const Lit q) {
        if (seen[q.var()] || levels[q.var()] == 0)
            return true;
        if (reasons[q.var()].isUndef() ||
            !(ab_levels & (1U << (levels[q.var()] & 31))))
            return false;
        seen[q.var()] = 1;
        cleared.push_back(q.var());
        stack.push_back(q);
        return true;
    };
    while (!stack.empty() && redundant) {
        const Lit cur = stack.back();
        stack.pop_back();
        const Reason r = reasons[cur.var()];
        qbAssert(!r.isUndef(), "litRedundant without reason");
        if (r.isBinary()) {
            redundant = visit(r.otherLit());
            continue;
        }
        const Clause &rc = reasonClause(cur.var());
        const unsigned size = rc.size();
        for (std::size_t j = 1; j < size && redundant; ++j)
            redundant = visit(rc[j]);
    }
    if (!redundant) {
        for (Var v : cleared)
            seen[v] = 0;
    } else {
        // Keep the marks (they short-circuit later redundancy checks)
        // but register them for clearing at the end of analyze().
        analyzeClear.insert(analyzeClear.end(), cleared.begin(),
                            cleared.end());
    }
    return redundant;
}

/**
 * On-the-fly self-subsumption (learn-time clause improvement): apply
 * the strengthenings analyze() discovered - during resolution, the
 * running resolvent turned out to equal an antecedent minus its
 * pivot, so that antecedent can lose the pivot literal, in the arena,
 * NOW, instead of waiting for the slice-boundary subsumption pass to
 * rediscover the pair.
 *
 * Called from search() AFTER backtracking to the assertion level:
 * every candidate was the reason of a conflict-level variable, so
 * none is locked any more and detaching is safe.  The edit keeps all
 * watch invariants: the clause is detached, the pivot removed, and
 * watches are re-picked among literals not false under the current
 * assignment - a shrink to binary simply re-attaches through the
 * specialized binary lists.  When fewer than two non-false literals
 * would remain the clause is left untouched (counted as otfSkipped);
 * vivification will catch it at the root.
 */
void
Solver::otfStrengthen()
{
    for (const auto &[cr, pivot] : otfCandidates) {
        const Clause &c = ca[cr];
        if (locked(cr))
            continue; // defensive: never edit a live reason
        // Commit only if the remainder still has two watchable
        // (non-false) literals right now.
        unsigned nonfalse = 0;
        for (const Lit y : c)
            if (y != pivot && value(y) != LBool::False)
                ++nonfalse;
        if (nonfalse < 2) {
            ++statistics.otfSkipped;
            // Remember the pair for the next root boundary, where the
            // edit is always safe, instead of waiting for the
            // slice-boundary vivification pass (see applyDeferredOtf).
            if (cfg.otfDefer &&
                otfDeferred.size() < cfg.otfDeferredMax)
                otfDeferred.push_back({cr, pivot});
            continue;
        }
        strengthenInPlace(cr, pivot);
        ++statistics.otfStrengthenedClauses;
    }
    otfCandidates.clear();
}

/** Drop queued deferred strengthenings of the clause behind @p cr;
 *  called from every clause-free site so otfDeferred never holds a
 *  dangling ClauseRef. */
void
Solver::purgeDeferredOtf(ClauseRef cr)
{
    if (otfDeferred.empty())
        return;
    std::erase_if(otfDeferred, [cr](const OtfCandidate &d) {
        return d.cref == cr;
    });
}

/**
 * Apply the strengthenings otfStrengthen() had to skip mid-search.
 * Called at root boundaries only - solve() entry and restarts that
 * return to decision level 0 - where strengthenInPlace() is
 * unconditionally safe: a result that goes unit is enqueued on the
 * root trail, an empty result latches Unsat (mirroring the
 * backwardSubsume() strengthening path).  Every queued cref is live
 * (see purgeDeferredOtf), but the clause may have changed since the
 * skip - the pivot is re-checked before editing.
 */
void
Solver::applyDeferredOtf()
{
    qbAssert(decisionLevel() == 0, "deferred OTF above root level");
    std::vector<OtfCandidate> pending;
    pending.swap(otfDeferred);
    for (std::size_t k = 0; k < pending.size() && okay; ++k) {
        const ClauseRef cr = pending[k].cref;
        const Lit pivot = pending[k].pivot;
        if (cr == kRefUndef || locked(cr))
            continue;
        const Clause &c = ca[cr];
        // Vivification/subsumption may have rewritten the clause since
        // the skip; only edit if the pivot is still present and the
        // clause can lose a literal.
        bool has_pivot = false;
        for (const Lit y : c)
            has_pivot |= (y == pivot);
        if (!has_pivot || c.size() < 2)
            continue;
        const bool learnt = c.learnt();
        const Strengthened s = strengthenInPlace(cr, pivot);
        ++statistics.otfDeferredApplied;
        if (s.becameBinary) {
            // The clause dissolved into the binary watch lists
            // (strengthenInPlace freed the ref and unlisted it);
            // invalidate later queue entries that still name it.
            for (std::size_t j = k + 1; j < pending.size(); ++j)
                if (pending[j].cref == cr)
                    pending[j].cref = kRefUndef;
            continue;
        }
        if (s.nonfalse >= 2)
            continue;
        // Unit (or empty) at the root: dissolve into the trail, free
        // the clause, and invalidate any later queue entries (and the
        // clause-list slot) that still name it.
        const Clause &d = ca[cr];
        const Lit unit = d.size() > 0 ? d[0] : kUndefLit;
        auto &list = learnt ? learntClauses : problemClauses;
        std::erase(list, cr);
        ca.free(cr);
        for (std::size_t j = k + 1; j < pending.size(); ++j)
            if (pending[j].cref == cr)
                pending[j].cref = kRefUndef;
        if (s.nonfalse == 0) {
            okay = false;
            break;
        }
        if (value(unit) == LBool::Undef) {
            uncheckedEnqueue(unit, Reason());
            okay = propagate() == kRefUndef;
        }
    }
}

/**
 * Remove @p l from the clause behind @p cr in place: detach, drop the
 * literal (accounting the shaved word), tighten the LBD, re-pick
 * watches among literals not false under the CURRENT assignment and
 * re-attach.  A shrink to TWO literals dissolves the clause out of
 * the arena entirely - it is freed, unlisted and re-filed as a
 * mirrored pair in the binary watch lists (becameBinary reports the
 * dead cref to the caller).  With fewer than two non-false literals
 * the clause is left DETACHED (unit or conflicting under the current
 * assignment) and the caller decides its fate.  Shared by the
 * learn-time OTF pass and the slice-boundary subsumption pass.
 */
Solver::Strengthened
Solver::strengthenInPlace(ClauseRef cr, Lit l)
{
    detachClause(cr);
    Clause &c = ca[cr];
    c.removeLiteral(l);
    ca.noteShrink(1);
    c.setLbd(std::min(c.lbd(), c.size()));
    std::size_t nonfalse = 0;
    for (std::size_t i = 0; i < c.size() && nonfalse < 2; ++i) {
        if (value(c[i]) != LBool::False)
            std::swap(c[nonfalse++], c[i]);
    }
    if (nonfalse < 2)
        return {nonfalse, false};
    if (c.size() == 2) {
        const Lit a = c[0];
        const Lit b = c[1];
        const bool learnt = c.learnt();
        auto &list = learnt ? learntClauses : problemClauses;
        std::erase(list, cr);
        purgeDeferredOtf(cr);
        ca.free(cr);
        attachBinary(a, b, learnt);
        return {nonfalse, true};
    }
    attachClause(cr);
    return {nonfalse, false};
}

void
Solver::cancelUntil(int target_level)
{
    if (decisionLevel() <= target_level)
        return;
    for (std::size_t i = trail.size();
         i > static_cast<std::size_t>(trailLim[target_level]); --i) {
        const Var v = trail[i - 1].var();
        assigns[v] = LBool::Undef;
        reasons[v] = Reason();
        order->insert(v);
    }
    trail.resize(trailLim[target_level]);
    trailLim.resize(target_level);
    qhead = trail.size();
}

Lit
Solver::pickBranchLit()
{
    // Substituted variables are retired from the search space: their
    // value is a function of their representative's, reconstructed
    // only for the model.
    if (cfg.useVsids) {
        while (!order->empty()) {
            // Peek by removing; re-inserted on backtrack.
            const Var v = order->removeMax();
            if (assigns[v] == LBool::Undef && !substituted[v])
                return mkLit(v, !polarity[v]);
        }
        return kUndefLit;
    }
    for (Var v = 0; v < numVars(); ++v) {
        if (assigns[v] == LBool::Undef && !substituted[v])
            return mkLit(v, !polarity[v]);
    }
    return kUndefLit;
}

void
Solver::varBumpActivity(Var v)
{
    activity[v] += varInc;
    if (activity[v] > 1e100) {
        for (double &a : activity)
            a *= 1e-100;
        varInc *= 1e-100;
    }
    order->update(v);
}

void
Solver::varDecayActivity()
{
    varInc /= cfg.varDecay;
}

void
Solver::claBumpActivity(Clause &c)
{
    c.setActivity(static_cast<float>(c.activity() + claInc));
    if (c.activity() > 1e20f) {
        for (ClauseRef lc : learntClauses) {
            Clause &x = ca[lc];
            x.setActivity(x.activity() * 1e-20f);
        }
        claInc *= 1e-20;
    }
}

void
Solver::claDecayActivity()
{
    claInc /= cfg.clauseDecay;
    // Activities are float in the arena header: rescale on the
    // increment itself, not only on a bump, so a long bump-free streak
    // cannot push claInc past float range.
    if (claInc > 1e20) {
        for (ClauseRef lc : learntClauses) {
            Clause &x = ca[lc];
            x.setActivity(x.activity() * 1e-20f);
        }
        claInc *= 1e-20;
    }
}

void
Solver::reduceDb()
{
    // Keep the better half, ranked by LBD then activity; always keep
    // clauses that are reasons for current assignments.
    std::sort(learntClauses.begin(), learntClauses.end(),
              [this](ClauseRef a, ClauseRef b) {
                  const Clause &x = ca[a];
                  const Clause &y = ca[b];
                  if (x.lbd() != y.lbd())
                      return x.lbd() < y.lbd();
                  return x.activity() > y.activity();
              });
    std::vector<ClauseRef> kept;
    kept.reserve(learntClauses.size());
    const std::size_t limit = learntClauses.size() / 2;
    for (std::size_t i = 0; i < learntClauses.size(); ++i) {
        const ClauseRef cr = learntClauses[i];
        if (i < limit || locked(cr) || ca[cr].lbd() <= 2)
            kept.push_back(cr);
        else
            removeClause(cr);
    }
    learntClauses = std::move(kept);
    maybeGarbageCollect();
}

void
Solver::restoreEliminated()
{
    // Undo bounded variable elimination: clear the placeholder
    // assignments, then re-add the original clauses each elimination
    // saved.  The resolvents stay (they are implied), so nothing that
    // was learnt since becomes unsound.  Restoration runs newest
    // elimination first: a variable's saved clauses can mention
    // variables eliminated later, never earlier (those were already
    // gone from the live clause set when it was eliminated).
    qbAssert(decisionLevel() == 0, "restore above root level");
    // Move the stack aside first: addClause() below re-enters the
    // elimStack guard, which must already see it empty.
    const auto saved = std::move(elimStack);
    elimStack.clear();
    for (auto it = saved.rbegin(); it != saved.rend(); ++it) {
        const Var v = it->first;
        assigns[v] = LBool::Undef;
        order->insert(v);
    }
    for (auto it = saved.rbegin(); it != saved.rend(); ++it) {
        for (const LitVec &clause : it->second) {
            if (!addClause(clause))
                return;
        }
    }
    statistics.eliminatedVars = 0;
}

void
Solver::shrinkLearnts(unsigned max_lbd)
{
    qbAssert(decisionLevel() == 0, "shrinkLearnts above root level");
    std::vector<ClauseRef> kept;
    kept.reserve(learntClauses.size());
    for (const ClauseRef cr : learntClauses) {
        Clause &c = ca[cr];
        if (locked(cr)) {
            kept.push_back(cr);
            continue;
        }
        // Imported clauses are exempt from the LBD judgement only for
        // their first importedRetireEpochs shrink calls; after that
        // they age out like ordinary learnts, so heavy exchange
        // cannot grow the learnt database without bound.  The age
        // field saturates at 255, so the config is clamped to keep
        // retirement reachable for any setting.
        if (c.imported() &&
            c.importAge() <
                std::min(cfg.importedRetireEpochs, 255u)) {
            c.bumpImportAge();
            kept.push_back(cr);
            continue;
        }
        if (c.lbd() <= max_lbd) {
            kept.push_back(cr);
            continue;
        }
        if (c.imported())
            ++statistics.importedRetired;
        removeClause(cr);
    }
    learntClauses = std::move(kept);
    maybeGarbageCollect();
}

void
Solver::postImport(LitVec clause, unsigned lbd)
{
    const std::lock_guard<std::mutex> guard(importMutex);
    importInbox.emplace_back(std::move(clause), lbd);
    importPending.store(true, std::memory_order_release);
}

void
Solver::drainImports()
{
    qbAssert(decisionLevel() == 0, "drainImports above root level");
    std::vector<std::pair<LitVec, unsigned>> batch;
    {
        const std::lock_guard<std::mutex> guard(importMutex);
        batch.swap(importInbox);
        importPending.store(false, std::memory_order_release);
    }
    // Keep draining after a latched Unsat: addImported() counts the
    // remaining offers as dropped, keeping the exchange stats honest.
    for (auto &[clause, lbd] : batch)
        addImported(std::move(clause), lbd);
}

void
Solver::addImported(LitVec lits, unsigned import_lbd)
{
    // Like addClause(), but the result is a marked learnt clause: the
    // exporter derived it, so it must stay eligible for reduction
    // bookkeeping rather than count as problem structure.  Imports are
    // dropped rather than restored against eliminated variables - a
    // preprocessed solver never participates in exchange anyway.
    //
    // Counting contract: importedClauses counts clauses actually
    // ADOPTED (attached, or enqueued as a root unit); every other
    // offer - broken solver, eliminated state, unknown variables,
    // already satisfied/tautological, or a root falsification that
    // only latches Unsat - counts as importedDropped.
    if (!okay || !elimStack.empty()) {
        ++statistics.importedDropped;
        return;
    }
    for (Lit &l : lits) {
        // The exporting sibling can be ahead in the shared clause
        // stream; a clause about structure this solver has not encoded
        // yet is simply not useful here.
        if (l.var() >= numVars()) {
            ++statistics.importedDropped;
            return;
        }
        // The exporter may not have merged the equivalence classes
        // this solver has: route to local representatives (a correct
        // translation - v and its representative are equivalent under
        // the shared problem clauses).
        l = representativeOf(l);
    }
    std::sort(lits.begin(), lits.end());
    LitVec kept;
    Lit prev = kUndefLit;
    for (Lit l : lits) {
        if (value(l) == LBool::True || l == ~prev) {
            ++statistics.importedDropped;
            return; // satisfied or tautological
        }
        if (value(l) != LBool::False && l != prev)
            kept.push_back(l);
        prev = l;
    }
    if (kept.empty()) {
        // Every literal is false at the root: latch Unsat.  Nothing
        // was adopted into the database, so this is a drop.
        okay = false;
        ++statistics.importedDropped;
        return;
    }
    ++statistics.importedClauses;
    if (kept.size() == 1) {
        uncheckedEnqueue(kept[0], Reason());
        okay = propagate() == kRefUndef;
        return;
    }
    if (kept.size() == 2) {
        // Imported binaries cost no arena words; the learnt flag
        // keeps them eligible for the graph passes' bookkeeping.
        attachBinary(kept[0], kept[1], /*learnt=*/true);
        return;
    }
    // Honest LBD: keep the exporter's value when known, otherwise the
    // clause size as the conservative bound.  The old min(size,
    // shareMaxLbd) cap granted every import permanent glue status,
    // which combined with the imported-clause shrink exemption to
    // grow the learnt database without bound under heavy exchange.
    const unsigned lbd = import_lbd != 0
        ? import_lbd
        : static_cast<unsigned>(kept.size());
    const ClauseRef cr =
        ca.alloc(kept, /*learnt=*/true, lbd, /*imported=*/true);
    learntClauses.push_back(cr);
    attachClause(cr);
    notePeaks();
}

std::int64_t
Solver::luby(std::int64_t i)
{
    // Finite-subsequence trick from the MiniSat sources.
    std::int64_t size = 1, seq = 0;
    while (size < i + 1) {
        ++seq;
        size = 2 * size + 1;
    }
    while (size - 1 != i) {
        size = (size - 1) >> 1;
        --seq;
        i = i % size;
    }
    return std::int64_t{1} << seq;
}

SolveResult
Solver::search(std::int64_t conflict_limit)
{
    std::int64_t conflicts_here = 0;
    LitVec learnt;
    while (true) {
        if (stopFlag != nullptr &&
            stopFlag->load(std::memory_order_relaxed)) {
            cancelUntil(0);
            return SolveResult::Unknown;
        }
        const ClauseRef conflict = propagate();
        if (conflict != kRefUndef) {
            ++statistics.conflicts;
            ++conflicts_here;
            if (decisionLevel() == 0) {
                // A root-level conflict means the clause database
                // itself is unsatisfiable; latch that for later
                // incremental calls (the falsified clause has already
                // been consumed from the propagation queue, so a
                // fresh search would not rediscover it).
                okay = false;
                return SolveResult::Unsat;
            }
            int bt_level;
            unsigned lbd;
            analyze(conflict, learnt, bt_level, lbd);
            cancelUntil(bt_level);
            // Learn-time clause improvement: strengthen antecedents
            // the fresh clause self-subsumes, now that backtracking
            // has unlocked them.
            if (cfg.otfSubsume)
                otfStrengthen();
            // Glue clauses travel: a low-LBD consequence of the clause
            // database is just as valid in a portfolio sibling solving
            // the identical clause stream.
            if (exportHook && lbd <= cfg.shareMaxLbd) {
#ifdef QB_DEBUG_CHECKS
                // Substituted variables are never assigned, so no
                // learnt clause can name one - and exported clauses
                // must not leak them to siblings either.
                for (const Lit l : learnt)
                    qbAssert(!substituted[l.var()],
                             "exported clause names a substituted "
                             "variable");
#endif
                exportHook(learnt, lbd);
                ++statistics.exportedClauses;
            }
            if (learnt.size() == 1) {
                uncheckedEnqueue(learnt[0], Reason());
            } else if (learnt.size() == 2) {
                // Learnt binaries never touch the arena: the watcher
                // pair is the clause and the Reason word carries the
                // antecedent literal.
                attachBinary(learnt[0], learnt[1], /*learnt=*/true);
                ++statistics.learntClauses;
                uncheckedEnqueue(learnt[0],
                                 Reason::binary(learnt[1]));
            } else {
                const ClauseRef cr =
                    ca.alloc(learnt, /*learnt=*/true, lbd,
                             /*imported=*/false,
                             static_cast<float>(claInc));
                learntClauses.push_back(cr);
                ++statistics.learntClauses;
                attachClause(cr);
                uncheckedEnqueue(learnt[0], Reason::clause(cr));
                notePeaks();
            }
            varDecayActivity();
            claDecayActivity();
            if (cfg.conflictBudget >= 0 &&
                statistics.conflicts - conflictsAtCallStart >=
                    cfg.conflictBudget)
                return SolveResult::Unknown;
        } else {
            if (conflict_limit >= 0 && conflicts_here >= conflict_limit) {
                // Restart: keep the assumption prefix of the trail so
                // the next search round does not re-propagate the
                // whole assumption cone (solve() unwinds to the root
                // before returning to the caller).
                cancelUntil(static_cast<int>(assumptions.size()));
                return SolveResult::Unknown;
            }
            // The legacy one-shot trigger scales with the problem
            // size, which in a long-lived incremental solver lets the
            // learnt database grow with session age and tax every
            // later query.  learntLimitBase selects an absolute limit
            // instead, rate-limited by conflict count so a floor of
            // protected (locked / lbd<=2) clauses cannot force a
            // database sort on every decision.
            if (cfg.reduceDb) {
                if (cfg.learntLimitBase >= 0) {
                    if (learntClauses.size() >
                            static_cast<std::size_t>(
                                cfg.learntLimitBase) +
                                trail.size() &&
                        statistics.conflicts >= nextReduceConflicts) {
                        reduceDb();
                        nextReduceConflicts =
                            statistics.conflicts + 1000;
                    }
                } else if (learntClauses.size() >
                           problemClauses.size() / 3 + 3000 +
                               trail.size()) {
                    reduceDb();
                }
            }
            // Extend the assumption prefix before free decisions: each
            // assumption gets its own decision level, so conflict
            // analysis can attribute an eventual Unsat to the precise
            // subset of assumptions it used.
            Lit next = kUndefLit;
            while (decisionLevel() <
                   static_cast<int>(assumptions.size())) {
                const Lit a = assumptions[decisionLevel()];
                if (value(a) == LBool::True) {
                    // Already implied: dummy level keeps the
                    // level <-> assumption-index correspondence.
                    trailLim.push_back(static_cast<int>(trail.size()));
                } else if (value(a) == LBool::False) {
                    analyzeFinal(a);
                    return SolveResult::Unsat;
                } else {
                    next = a;
                    break;
                }
            }
            if (next == kUndefLit) {
                next = pickBranchLit();
                if (next == kUndefLit) {
                    model.assign(assigns.begin(), assigns.end());
                    return SolveResult::Sat;
                }
            }
            ++statistics.decisions;
            trailLim.push_back(static_cast<int>(trail.size()));
            uncheckedEnqueue(next, Reason());
        }
    }
}

SolveResult
Solver::solve()
{
    return solve(LitVec{});
}

SolveResult
Solver::solve(const LitVec &assumps)
{
    originalAssumptions = assumps;
    assumptions = assumps;
    conflictCore.clear();
    conflictsAtCallStart = statistics.conflicts;
    if (!okay)
        return SolveResult::Unsat;
    for (Lit a : assumptions) {
        while (a.var() >= numVars())
            newVar();
    }
    // Assumptions over merged variables are redirected to their class
    // representative; analyzeFinal() translates any core back to the
    // caller's original literals.
    if (!eqStack.empty()) {
        for (Lit &a : assumptions)
            a = representativeOf(a);
    }
    if (propagate() != kRefUndef) {
        okay = false;
        return SolveResult::Unsat;
    }
    // Bounded variable elimination is a one-shot, whole-database
    // transformation: it is unsound to run once clauses have been
    // learnt or when assumptions may mention eliminated variables, so
    // it only runs on the first assumption-free call - and if an
    // assumption-based call arrives after it has run, the eliminated
    // clauses are restored first (an eliminated variable carries a
    // placeholder assignment that would silently satisfy or falsify
    // assumptions on it).
    if (!assumptions.empty() && !elimStack.empty()) {
        restoreEliminated();
        if (!okay)
            return SolveResult::Unsat;
    }
    // Root-level binary-graph pass.  One-shot (assumption-free)
    // solves rarely live long enough to reach the periodic
    // inprocessing boundary, so the analysis also runs here - and it
    // runs BEFORE bounded variable elimination: the equivalence
    // cycles it merges (an XOR output fixed at root leaves its
    // arguments binary-equivalent) are exactly the structures
    // resolution would otherwise dissolve variable by variable.
    // Assumption-based calls skip it - the passes assume a level-0
    // trail that only contains facts.  The pending flag keeps sliced
    // racing honest: a budget-exhausted lane re-enters solve() with
    // the same problem formula, and re-probing it every slice costs
    // more than the whole search.
    if (cfg.binaryAnalysis && assumptions.empty() &&
        binaryAnalysisPending) {
        binaryAnalysisPending = false;
        analyzeBinaryGraph();
        if (!okay)
            return SolveResult::Unsat;
    }
    if (cfg.preprocess && assumptions.empty() && !preprocessed &&
        learntClauses.empty()) {
        preprocessed = true;
        if (!preprocessEliminate()) {
            okay = false;
            return SolveResult::Unsat;
        }
    }
    if (importPending.load(std::memory_order_acquire)) {
        drainImports();
        if (!okay)
            return SolveResult::Unsat;
    }
    // Root boundary: land the strengthenings the last call's conflict
    // analysis could not apply mid-search.
    if (cfg.otfDefer && !otfDeferred.empty()) {
        applyDeferredOtf();
        if (!okay)
            return SolveResult::Unsat;
    }
    std::int64_t restart = 0;
    double geometric = static_cast<double>(cfg.restartBase);
    while (true) {
        const std::int64_t limit = cfg.lubyRestarts
            ? luby(restart) * cfg.restartBase
            : static_cast<std::int64_t>(geometric);
        const SolveResult result = search(limit);
        if (result != SolveResult::Unknown) {
            if (result == SolveResult::Sat) {
                // Extend the model over merged variables first: each
                // one copies (or negates) its representative's value.
                // Newest-first resolves cross-pass chains (v merged
                // into u, u merged later still), and runs BEFORE the
                // eliminated-variable reconstruction because clauses
                // saved by an elimination that predates a merge can
                // mention merged variables - whose values must exist
                // by then.
                for (auto it = eqStack.rbegin(); it != eqStack.rend();
                     ++it) {
                    const Lit rep = it->second;
                    model[it->first] = rep.sign()
                        ? lboolNeg(model[rep.var()])
                        : model[rep.var()];
                }
                // Extend the model over eliminated variables.
                for (auto it = elimStack.rbegin(); it != elimStack.rend();
                     ++it) {
                    const Var v = it->first;
                    model[v] = LBool::True;
                    for (const LitVec &c : it->second) {
                        bool sat = false;
                        bool v_neg = false;
                        for (Lit l : c) {
                            if (l.var() == v) {
                                v_neg = l.sign();
                                continue;
                            }
                            if (model[l.var()] == lboolOf(!l.sign())) {
                                sat = true;
                                break;
                            }
                        }
                        if (!sat)
                            model[v] = lboolOf(!v_neg);
                    }
                }
            }
            cancelUntil(0);
            return result;
        }
        if (cfg.conflictBudget >= 0 &&
            statistics.conflicts - conflictsAtCallStart >=
                cfg.conflictBudget) {
            cancelUntil(0);
            return SolveResult::Unknown;
        }
        if (stopFlag != nullptr &&
            stopFlag->load(std::memory_order_relaxed)) {
            cancelUntil(0);
            return SolveResult::Unknown;
        }
        // Restart boundary: adopt whatever the portfolio siblings have
        // shared since the last round.  Imports splice in at the root,
        // where watch setup against a clean trail is trivial.
        if (importPending.load(std::memory_order_acquire)) {
            cancelUntil(0);
            drainImports();
            if (!okay) {
                cancelUntil(0);
                return SolveResult::Unsat;
            }
        }
        // A restart that lands at the root is also a safe point for
        // the deferred strengthenings (assumption-based calls keep
        // their assumption prefix and defer to the next solve()).
        if (cfg.otfDefer && !otfDeferred.empty() &&
            decisionLevel() == 0) {
            applyDeferredOtf();
            if (!okay) {
                cancelUntil(0);
                return SolveResult::Unsat;
            }
        }
        ++statistics.restarts;
        ++restart;
        geometric *= 1.5;
    }
}

LBool
Solver::modelValue(Var v) const
{
    if (v < 0 || v >= static_cast<Var>(model.size()))
        return LBool::Undef;
    return model[v];
}

bool
Solver::preprocessEliminate()
{
    // Bounded variable elimination (NiVER-style): resolve away variables
    // whenever doing so does not grow the clause count.  Operates on the
    // root-level problem clauses before any learning has happened.
    qbAssert(decisionLevel() == 0, "preprocess above root level");
    // Every assignment is a root-level fact here and none of their
    // reason clauses survive the rebuild below.  Drop the references
    // NOW: conflict analysis never expands level-0 reasons, but a kept
    // reference would make relocAll() resurrect the freed clause into
    // every future arena - an unbounded, unaccounted leak.
    for (const Lit l : trail)
        reasons[l.var()] = Reason();
    std::vector<LitVec> clauses;
    clauses.reserve(problemClauses.size());
    for (const ClauseRef cr : problemClauses) {
        const Clause &c = ca[cr];
        LitVec kept;
        bool satisfied = false;
        for (Lit l : c) {
            if (value(l) == LBool::True) {
                satisfied = true;
                break;
            }
            if (value(l) == LBool::Undef)
                kept.push_back(l);
        }
        if (!satisfied)
            clauses.push_back(std::move(kept));
        detachClause(cr);
        ca.free(cr);
    }
    problemClauses.clear();
    otfDeferred.clear(); // whole pre-elimination database is gone
    // Binary clauses live only in the watch lists: fold the canonical
    // direction of every pair into the working set and clear the
    // lists (survivors are re-filed by the re-add loop below).
    for (std::size_t idx = 0; idx < binWatches.size(); ++idx) {
        const Lit a = ~litFromIndex(idx);
        for (const BinWatcher &w : binWatches[idx]) {
            if (!(a < w.other))
                continue;
            LitVec kept;
            bool satisfied = false;
            for (const Lit l : {a, w.other}) {
                if (value(l) == LBool::True) {
                    satisfied = true;
                    break;
                }
                if (value(l) == LBool::Undef)
                    kept.push_back(l);
            }
            if (!satisfied)
                clauses.push_back(std::move(kept));
        }
    }
    for (auto &list : binWatches)
        list.clear();

    // Incremental occurrence lists over a tombstoned clause vector.
    constexpr std::size_t occ_limit = 10;
    std::vector<bool> dead(clauses.size(), false);
    std::vector<std::vector<std::size_t>> occ_pos(numVars());
    std::vector<std::vector<std::size_t>> occ_neg(numVars());
    auto index_clause = [&](std::size_t i) {
        for (Lit l : clauses[i])
            (l.sign() ? occ_neg : occ_pos)[l.var()].push_back(i);
    };
    for (std::size_t i = 0; i < clauses.size(); ++i)
        index_clause(i);
    auto live_occurrences = [&](std::vector<std::size_t> &occ) {
        occ.erase(std::remove_if(occ.begin(), occ.end(),
                                 [&](std::size_t i) {
                                     return dead[i];
                                 }),
                  occ.end());
        return occ.size();
    };

    std::vector<bool> frozen(numVars(), false);
    // An SCC representative must survive elimination: the model
    // reconstruction in solve() extends each merged variable from its
    // representative's value BEFORE replaying eliminated variables,
    // so a representative eliminated here would be read while still
    // unset.  (Merged variables themselves need no freezing - they
    // no longer occur in any clause, so the zero-occurrence skip
    // below never touches them.)
    for (const auto &entry : eqStack)
        frozen[entry.second.var()] = true;
    std::vector<Var> queue;
    for (Var v = 0; v < numVars(); ++v)
        queue.push_back(v);
    while (!queue.empty()) {
        const Var v = queue.back();
        queue.pop_back();
        if (frozen[v] || assigns[v] != LBool::Undef)
            continue;
        const std::size_t pos_count = live_occurrences(occ_pos[v]);
        const std::size_t neg_count = live_occurrences(occ_neg[v]);
        if (pos_count == 0 && neg_count == 0)
            continue;
        if (pos_count > occ_limit || neg_count > occ_limit)
            continue;
        const auto pos = occ_pos[v];
        const auto neg = occ_neg[v];
        // Build all non-tautological resolvents; abort if eliminating
        // v would grow the clause count (NiVER criterion).
        std::vector<LitVec> resolvents;
        bool abort_var = false;
        for (std::size_t pi : pos) {
            for (std::size_t ni : neg) {
                LitVec res;
                bool taut = false;
                for (Lit l : clauses[pi])
                    if (l.var() != v)
                        res.push_back(l);
                for (Lit l : clauses[ni])
                    if (l.var() != v)
                        res.push_back(l);
                std::sort(res.begin(), res.end());
                res.erase(std::unique(res.begin(), res.end()),
                          res.end());
                for (std::size_t k = 0; k + 1 < res.size(); ++k) {
                    if (res[k].var() == res[k + 1].var()) {
                        taut = true;
                        break;
                    }
                }
                if (!taut)
                    resolvents.push_back(std::move(res));
                if (resolvents.size() > pos.size() + neg.size()) {
                    abort_var = true;
                    break;
                }
            }
            if (abort_var)
                break;
        }
        if (abort_var) {
            frozen[v] = true;
            continue;
        }
        // Commit: remember v's clauses for model reconstruction and
        // splice in the resolvents.
        std::vector<LitVec> saved;
        for (std::size_t i : pos) {
            saved.push_back(clauses[i]);
            dead[i] = true;
        }
        for (std::size_t i : neg) {
            saved.push_back(clauses[i]);
            dead[i] = true;
        }
        elimStack.emplace_back(v, std::move(saved));
        for (LitVec &r : resolvents) {
            const std::size_t idx = clauses.size();
            clauses.push_back(std::move(r));
            dead.push_back(false);
            index_clause(idx);
            // Touched variables become candidates again.
            for (Lit l : clauses[idx])
                queue.push_back(l.var());
        }
        assigns[v] = LBool::True; // block decisions on v
        levels[v] = 0;
        ++statistics.eliminatedVars;
    }

    // Re-add the surviving clauses through the normal path.
    for (std::size_t i = 0; i < clauses.size(); ++i) {
        if (dead[i])
            continue;
        LitVec &c = clauses[i];
        if (c.empty())
            return false;
        if (c.size() == 1) {
            if (value(c[0]) == LBool::False)
                return false;
            if (value(c[0]) == LBool::Undef)
                uncheckedEnqueue(c[0], Reason());
            continue;
        }
        if (c.size() == 2) {
            attachBinary(c[0], c[1], /*learnt=*/false);
            continue;
        }
        const ClauseRef cl = ca.alloc(c, /*learnt=*/false, /*lbd=*/0);
        problemClauses.push_back(cl);
        attachClause(cl);
    }
    notePeaks();
    const bool ok = propagate() == kRefUndef;
    // The whole pre-elimination database is garbage in the arena now.
    maybeGarbageCollect();
    return ok;
}

void
Solver::relocAll(ClauseAllocator &to)
{
    // Patch every live reference through the forwarding words: watcher
    // lists first (order and blockers preserved verbatim), then the
    // reasons of all assigned variables (root-level assignments keep
    // their reason clauses forever; reduceDb/shrinkLearnts never free
    // locked clauses, so every such reference is live), then the
    // clause lists themselves.
    for (auto &list : watches)
        for (Watcher &w : list)
            w.cref = ca.reloc(w.cref, to);
    // Binary watchers carry literals, not arena references - nothing
    // to patch there, and binary reason words survive GC untouched.
    for (Var v = 0; v < numVars(); ++v) {
        if (assigns[v] != LBool::Undef && reasons[v].isClause())
            reasons[v] = Reason::clause(
                ca.reloc(reasons[v].clauseRef(), to));
    }
    for (ClauseRef &cr : problemClauses)
        cr = ca.reloc(cr, to);
    for (ClauseRef &cr : learntClauses)
        cr = ca.reloc(cr, to);
    for (OtfCandidate &d : otfDeferred)
        d.cref = ca.reloc(d.cref, to);
}

void
Solver::garbageCollect()
{
    ClauseAllocator to;
    to.reserveWords(ca.words() - ca.wasted());
    relocAll(to);
    ++statistics.gcRuns;
    statistics.gcWordsReclaimed +=
        static_cast<std::int64_t>(ca.words() - to.words());
    ca = std::move(to);
}

void
Solver::maybeGarbageCollect()
{
    // The MiniSat threshold: compact once a fifth of the arena is
    // garbage.  Cheaper than malloc/free per clause ever was, and the
    // copy restores allocation order = traversal order.
    if (ca.wasted() > ca.words() / 5)
        garbageCollect();
}

bool
Solver::inprocess()
{
    qbAssert(decisionLevel() == 0, "inprocess above root level");
    if (!okay || !cfg.inprocessing)
        return okay;
    ++statistics.inprocessRuns;
    if (cfg.binaryAnalysis)
        analyzeBinaryGraph();
    if (okay)
        vivifyLearnts();
    if (okay)
        backwardSubsume();
    maybeGarbageCollect();
    return okay;
}

void
Solver::vivifyLearnts()
{
    // Clause vivification (distillation): for a learnt clause
    // l1..lk, enqueue ~l1..~li in turn at a throwaway decision level.
    // A propagation conflict proves the prefix l1..li is implied (the
    // clause shrinks to it); an implied lj proves prefix+lj subsumes
    // the clause; an implied ~lj removes lj by resolution.  The clause
    // under test is detached first so it cannot justify itself.
    std::int64_t budget = cfg.vivifyPropBudget;
    for (std::size_t idx = 0; idx < learntClauses.size(); ++idx) {
        if (budget <= 0 || !okay)
            break;
        const ClauseRef cr = learntClauses[idx];
        if (locked(cr))
            continue;
        const Clause &c = ca[cr];
        if (c.size() < 3)
            continue;
        const LitVec lits(c.begin(), c.end());
        const bool was_imported = c.imported();
        const unsigned old_lbd = c.lbd();
        const float act = c.activity();
        // Clauses satisfied at the root are pure ballast.
        bool root_sat = false;
        for (Lit l : lits) {
            if (value(l) == LBool::True) {
                root_sat = true;
                break;
            }
        }
        if (root_sat) {
            removeClause(cr);
            learntClauses[idx--] = learntClauses.back();
            learntClauses.pop_back();
            continue;
        }
        detachClause(cr);
        const std::int64_t props_before = statistics.propagations;
        trailLim.push_back(static_cast<int>(trail.size()));
        LitVec kept;
        bool shortened = false;
        for (Lit l : lits) {
            const LBool v = value(l);
            if (v == LBool::True) {
                // Implied by the negated prefix: prefix + l subsumes.
                kept.push_back(l);
                shortened = true;
                break;
            }
            if (v == LBool::False) {
                // ~l implied: drop l by self-subsuming resolution.
                shortened = true;
                continue;
            }
            kept.push_back(l);
            uncheckedEnqueue(~l, Reason());
            if (propagate() != kRefUndef) {
                // The negated prefix is contradictory: it suffices.
                shortened = true;
                break;
            }
        }
        cancelUntil(0);
        budget -= statistics.propagations - props_before;
        if (!shortened || kept.size() >= lits.size()) {
            attachClause(cr); // unchanged; watch positions intact
            continue;
        }
        ++statistics.vivifiedClauses;
        statistics.vivifiedLiterals +=
            static_cast<std::int64_t>(lits.size() - kept.size());
        purgeDeferredOtf(cr);
        ca.free(cr);
        if (kept.size() >= 3) {
            // All kept literals are unassigned at the root (false ones
            // were dropped, a true one ends the root_sat scan), so any
            // two of them are valid watches.
            const unsigned lbd = std::min(
                old_lbd, static_cast<unsigned>(kept.size()));
            const ClauseRef nr =
                ca.alloc(kept, /*learnt=*/true, lbd, was_imported, act);
            learntClauses[idx] = nr;
            attachClause(nr);
            notePeaks(); // replacements grow the arena tail
            continue;
        }
        learntClauses[idx--] = learntClauses.back();
        learntClauses.pop_back();
        if (kept.size() == 2) {
            // Shrank to a binary: it moves out of the arena into the
            // mirrored watch-list pair.
            attachBinary(kept[0], kept[1], /*learnt=*/true);
            continue;
        }
        if (kept.empty()) {
            okay = false; // every literal false at the root
            return;
        }
        if (value(kept[0]) == LBool::False) {
            okay = false;
        } else if (value(kept[0]) == LBool::Undef) {
            uncheckedEnqueue(kept[0], Reason());
            okay = propagate() == kRefUndef;
        }
    }
}

void
Solver::backwardSubsume()
{
    // Backward subsumption with self-subsuming resolution over the
    // whole database (krox/dawn-style, bounded): for each clause C up
    // to subsumeMaxSize literals, scan the occurrence lists of its
    // least-frequent literal (both polarities) for clauses D with
    // C subset D (drop D) or C \ {l} + {~l} subset D (remove ~l from
    // D).  Signatures prune most candidate pairs to one 64-bit test.
    qbAssert(decisionLevel() == 0, "subsume above root level");
    struct Entry
    {
        ClauseRef cr;
        std::uint64_t sig;
        bool learnt;
        bool dead;
    };
    std::vector<Entry> entries;
    entries.reserve(problemClauses.size() + learntClauses.size());
    for (const ClauseRef cr : problemClauses)
        entries.push_back({cr, 0, false, false});
    for (const ClauseRef cr : learntClauses)
        entries.push_back({cr, 0, true, false});

    std::vector<std::vector<std::uint32_t>> occ(watches.size());
    for (std::uint32_t i = 0;
         i < static_cast<std::uint32_t>(entries.size()); ++i) {
        const Clause &c = ca[entries[i].cr];
        std::uint64_t sig = 0;
        for (Lit l : c) {
            sig |= std::uint64_t{1} << (l.var() & 63);
            occ[l.index()].push_back(i);
        }
        entries[i].sig = sig;
    }

    std::vector<char> inSubsumer(watches.size(), 0);

    // Remove @p l from @p d in place (self-subsuming resolution):
    // strengthenInPlace() re-picks watches among non-false literals -
    // the swapped-in tail literal may be root-false, and watching a
    // falsified literal whose negation was already propagated would
    // silence the clause forever.
    const auto strengthen = [this, &entries](std::uint32_t j, Lit l) {
        Entry &d = entries[j];
        ++statistics.strengthenedClauses;
        const Strengthened s = strengthenInPlace(d.cr, l);
        if (s.becameBinary) {
            // Dissolved into the binary watch lists; the ref is
            // already freed and unlisted.
            d.dead = true;
            return;
        }
        if (s.nonfalse >= 2)
            return; // re-attached
        // Unit (or empty) at the root: dissolve into the trail.
        d.dead = true;
        const Clause &c = ca[d.cr];
        purgeDeferredOtf(d.cr);
        ca.free(d.cr);
        if (s.nonfalse == 0) {
            okay = false;
            return;
        }
        if (value(c[0]) == LBool::Undef) {
            uncheckedEnqueue(c[0], Reason());
            okay = propagate() == kRefUndef;
        }
    };

    // Least-frequent literal, counting both polarities (the negated
    // list feeds the strengthening case).
    const auto pairCount = [&occ](Lit l) {
        return occ[l.index()].size() + occ[(~l).index()].size();
    };

    // Binary clauses live outside the arena and therefore outside
    // `entries`; run them as SUBSUMERS in a prepass.  Index-based
    // loops: strengthen() can append to binary watch lists (a long
    // clause shrinking to two literals), which may reallocate them,
    // but never appends to `occ`.
    for (std::size_t idx = 0; idx < binWatches.size() && okay; ++idx) {
        for (std::size_t k = 0; k < binWatches[idx].size() && okay;
             ++k) {
            const BinWatcher w = binWatches[idx][k]; // value copy
            const Lit a = ~litFromIndex(idx);
            if (!(a < w.other))
                continue; // visit each pair once, canonically
            const Lit b = w.other;
            const Lit best = pairCount(a) <= pairCount(b) ? a : b;
            if (pairCount(best) > cfg.subsumeOccLimit)
                continue;
            inSubsumer[a.index()] = 1;
            inSubsumer[b.index()] = 1;
            const std::uint64_t sig =
                (std::uint64_t{1} << (a.var() & 63)) |
                (std::uint64_t{1} << (b.var() & 63));
            for (const Lit probe : {best, ~best}) {
                for (const std::uint32_t j : occ[probe.index()]) {
                    Entry &d = entries[j];
                    if (d.dead || (sig & ~d.sig) != 0 || locked(d.cr))
                        continue;
                    const Clause &cd = ca[d.cr];
                    unsigned matched = 0, negations = 0;
                    Lit neg = kUndefLit;
                    for (Lit y : cd) {
                        if (inSubsumer[y.index()]) {
                            ++matched;
                        } else if (inSubsumer[(~y).index()]) {
                            ++negations;
                            neg = y;
                        }
                    }
                    if (matched == 2) {
                        // (a | b) subsumes D.  A learnt binary
                        // standing in for a problem clause is promoted
                        // (both mirrored entries), same rationale as
                        // the long-clause case below.
                        if (w.learnt && !d.learnt) {
                            binWatches[idx][k].learnt = false;
                            for (BinWatcher &m :
                                 binWatches[(~b).index()])
                                if (m.other == a)
                                    m.learnt = false;
                        }
                        d.dead = true;
                        detachClause(d.cr);
                        purgeDeferredOtf(d.cr);
                        ca.free(d.cr);
                        ++statistics.subsumedClauses;
                    } else if (matched == 1 && negations == 1) {
                        strengthen(j, neg);
                        if (!okay)
                            break;
                    }
                }
                if (!okay)
                    break;
            }
            inSubsumer[a.index()] = 0;
            inSubsumer[b.index()] = 0;
        }
    }

    for (std::uint32_t i = 0;
         i < static_cast<std::uint32_t>(entries.size()) && okay; ++i) {
        Entry &e = entries[i];
        if (e.dead)
            continue;
        const Clause &c = ca[e.cr];
        if (c.size() < 2 || c.size() > cfg.subsumeMaxSize)
            continue;
        Lit best = c[0];
        for (Lit l : c)
            if (pairCount(l) < pairCount(best))
                best = l;
        if (pairCount(best) > cfg.subsumeOccLimit)
            continue;
        for (Lit l : c)
            inSubsumer[l.index()] = 1;
        const unsigned csize = c.size();
        for (const Lit probe : {best, ~best}) {
            for (const std::uint32_t j : occ[probe.index()]) {
                if (j == i || entries[j].dead)
                    continue;
                Entry &d = entries[j];
                const Clause &cd = ca[d.cr];
                if (cd.size() < csize || (e.sig & ~d.sig) != 0)
                    continue;
                if (locked(d.cr))
                    continue;
                unsigned matched = 0, negations = 0;
                Lit neg = kUndefLit;
                for (Lit y : cd) {
                    if (inSubsumer[y.index()]) {
                        ++matched;
                    } else if (inSubsumer[(~y).index()]) {
                        ++negations;
                        neg = y;
                    }
                }
                if (matched == csize) {
                    // C subsumes D.  A learnt subsumer standing in for
                    // a problem clause is promoted to problem status,
                    // otherwise a later shrinkLearnts() could silently
                    // lose the constraint.
                    if (e.learnt && !d.learnt) {
                        e.learnt = false;
                        ca[e.cr].clearLearnt();
                    }
                    d.dead = true;
                    detachClause(d.cr);
                    purgeDeferredOtf(d.cr);
                    ca.free(d.cr);
                    ++statistics.subsumedClauses;
                } else if (matched + 1 == csize && negations == 1) {
                    strengthen(j, neg);
                    if (!okay)
                        break;
                }
            }
            if (!okay)
                break;
        }
        for (Lit l : c)
            inSubsumer[l.index()] = 0;
    }

    problemClauses.clear();
    learntClauses.clear();
    for (const Entry &e : entries) {
        if (e.dead)
            continue;
        (e.learnt ? learntClauses : problemClauses).push_back(e.cr);
    }
}

Lit
Solver::representativeOf(Lit l) const
{
    // Chase the substitution chain (SCC merges from successive
    // inprocessing rounds may stack) to the un-substituted class
    // representative, flipping polarity along negated links.
    while (substituted[l.var()] != 0) {
        const Lit rep = subst[l.var()];
        l = l.sign() ? ~rep : rep;
    }
    return l;
}

/**
 * Slice-boundary analysis of the binary implication graph, run from
 * inprocess() under cfg.binaryAnalysis.  Order matters: the sweep
 * clears satisfied edges so the graph passes see only live 2-clauses;
 * SCC merging shrinks the variable space before probing spends its
 * budget; probing's new units and hyper-binaries are swept/fed into
 * transitive reduction last.  Every pass preserves satisfiability AND
 * the model set over the original variables (substitution is undone
 * in solve()'s model reconstruction), so verdicts and counterexamples
 * are bit-identical with the analysis on or off.
 */
/**
 * Rewrite the long-clause database against the root trail before the
 * graph passes run: a root-satisfied clause drops, a root-false
 * literal drops from its clause, and a clause left with exactly two
 * free literals re-files as a REAL binary in the watch lists.  This
 * is what connects root units to the binary graph - an XOR gate whose
 * output is a root fact leaves its two ternaries as the equivalence
 * pair (x | y), (~x | ~y), but SCC reduction can only see that pair
 * once it lives in the binary lists.
 */
void
Solver::cleanRootClauses()
{
    qbAssert(decisionLevel() == 0, "root cleaning above root level");
    // Reason references into the long-clause arena may be freed
    // below; root facts need no justification (see
    // preprocessEliminate()).
    for (const Lit l : trail)
        reasons[l.var()] = Reason();
    for (auto *list : {&problemClauses, &learntClauses}) {
        for (std::size_t i = 0; i < list->size();) {
            const ClauseRef cr = (*list)[i];
            Clause &c = ca[cr];
            bool satisfied = false;
            bool touched = false;
            for (const Lit l : c) {
                if (value(l) == LBool::True) {
                    satisfied = true;
                    break;
                }
                touched |= value(l) == LBool::False;
            }
            if (!satisfied && !touched) {
                ++i;
                continue;
            }
            LitVec kept;
            if (!satisfied) {
                for (const Lit l : c)
                    if (value(l) == LBool::Undef)
                        kept.push_back(l);
                ++statistics.strengthenedClauses;
            }
            const bool learnt = c.learnt();
            const bool imported = c.imported();
            const unsigned lbd = c.lbd();
            const float act = c.activity();
            detachClause(cr);
            purgeDeferredOtf(cr);
            ca.free(cr);
            if (!satisfied && kept.size() >= 3) {
                const ClauseRef nr = ca.alloc(
                    kept, learnt,
                    std::min(lbd,
                             static_cast<unsigned>(kept.size())),
                    imported, act);
                (*list)[i] = nr;
                attachClause(nr);
                ++i;
                continue;
            }
            std::swap((*list)[i], list->back());
            list->pop_back();
            if (satisfied)
                continue;
            // At the root propagation fixpoint a live clause keeps at
            // least two free literals: one survivor would have been
            // propagated (satisfying the clause), zero would have
            // conflicted in the propagate() call just above.
            qbAssert(kept.size() == 2,
                     "root fixpoint leaves >= 2 free literals");
            attachBinary(kept[0], kept[1], learnt);
        }
    }
}

void
Solver::analyzeBinaryGraph()
{
    qbAssert(decisionLevel() == 0, "binary analysis above root level");
    if (propagate() != kRefUndef) {
        okay = false;
        return;
    }
    cleanRootClauses();
    sweepSatisfiedBinaries();
    if (sccEquivalenceReduce()) {
        if (!okay)
            return;
        applyEquivalences();
        if (!okay)
            return;
        sweepSatisfiedBinaries();
    }
    if (!okay)
        return;
    probeFailedLiterals();
    if (!okay)
        return;
    sweepSatisfiedBinaries();
    transitiveReduce();
}

void
Solver::sweepSatisfiedBinaries()
{
    // At the root propagation fixpoint every binary with an assigned
    // endpoint is satisfied (a false endpoint would have propagated
    // the other literal true), so dropping the edge loses nothing.
    // Not counted as clause removals: the constraint is absorbed by
    // the trail, exactly like the root-satisfied long-clause sweeps.
    for (std::size_t idx = 0; idx < binWatches.size(); ++idx) {
        auto &list = binWatches[idx];
        if (list.empty())
            continue;
        if (assigns[litFromIndex(idx).var()] != LBool::Undef) {
            list.clear();
            continue;
        }
        std::erase_if(list, [this](const BinWatcher &w) {
            return assigns[w.other.var()] != LBool::Undef;
        });
    }
}

/**
 * Tarjan SCC over the binary implication graph.  A strongly connected
 * component is a class of pairwise-equivalent literals: the
 * lowest-index member becomes the representative and the others are
 * substituted away (committed to substituted/subst/eqStack; the
 * clause database is rewritten by applyEquivalences()).  The graph is
 * skew-symmetric (u->v iff ~v->~u), so the complement of a component
 * is a component and min(~C) == ~min(C): both polarities of a merged
 * variable agree on their representative, and a variable is merged at
 * most once.  A component holding both polarities of one variable is
 * a root contradiction: latch Unsat and commit nothing.  Returns true
 * when at least one variable was merged.
 */
bool
Solver::sccEquivalenceReduce()
{
    const std::size_t n = binWatches.size();
    std::vector<std::uint32_t> index(n, 0);
    std::vector<std::uint32_t> low(n, 0);
    std::vector<char> onStack(n, 0);
    std::vector<std::uint32_t> sccStack;
    std::uint32_t nextIndex = 0;
    struct Frame
    {
        std::uint32_t node;
        std::uint32_t child;
    };
    std::vector<Frame> dfs;
    std::vector<char> memberSeen(numVars(), 0);
    std::vector<char> mergedNow(numVars(), 0);
    std::vector<std::uint32_t> comp;
    std::vector<std::pair<Var, Lit>> pending;

    for (std::size_t root = 0; root < n; ++root) {
        if (index[root] != 0 || binWatches[root].empty())
            continue;
        if (assigns[litFromIndex(root).var()] != LBool::Undef)
            continue;
        index[root] = low[root] = ++nextIndex;
        onStack[root] = 1;
        sccStack.push_back(static_cast<std::uint32_t>(root));
        dfs.push_back({static_cast<std::uint32_t>(root), 0});
        while (!dfs.empty()) {
            Frame &f = dfs.back();
            if (f.child < binWatches[f.node].size()) {
                const auto v = static_cast<std::uint32_t>(
                    binWatches[f.node][f.child++].other.index());
                if (index[v] == 0) {
                    index[v] = low[v] = ++nextIndex;
                    onStack[v] = 1;
                    sccStack.push_back(v);
                    dfs.push_back({v, 0});
                } else if (onStack[v] != 0) {
                    low[f.node] = std::min(low[f.node], index[v]);
                }
                continue;
            }
            const std::uint32_t u = f.node;
            dfs.pop_back();
            if (!dfs.empty())
                low[dfs.back().node] =
                    std::min(low[dfs.back().node], low[u]);
            if (low[u] != index[u])
                continue;
            comp.clear();
            for (;;) {
                const std::uint32_t m = sccStack.back();
                sccStack.pop_back();
                onStack[m] = 0;
                comp.push_back(m);
                if (m == u)
                    break;
            }
            if (comp.size() < 2)
                continue;
            bool contradiction = false;
            for (const std::uint32_t mi : comp) {
                const Var mv = litFromIndex(mi).var();
                if (memberSeen[mv] != 0) {
                    contradiction = true;
                    break;
                }
                memberSeen[mv] = 1;
            }
            for (const std::uint32_t mi : comp)
                memberSeen[litFromIndex(mi).var()] = 0;
            if (contradiction) {
                okay = false;
                return false;
            }
            std::uint32_t minIdx = comp[0];
            for (const std::uint32_t mi : comp)
                minIdx = std::min(minIdx, mi);
            const Lit rep = litFromIndex(minIdx);
            for (const std::uint32_t mi : comp) {
                if (mi == minIdx)
                    continue;
                const Lit ml = litFromIndex(mi);
                if (mergedNow[ml.var()] != 0)
                    continue; // complement class already merged it
                mergedNow[ml.var()] = 1;
                pending.emplace_back(ml.var(),
                                     ml.sign() ? ~rep : rep);
            }
        }
    }
    if (pending.empty())
        return false;
    for (const auto &[v, repLit] : pending) {
        substituted[v] = 1;
        subst[v] = repLit;
        eqStack.emplace_back(v, repLit);
    }
    statistics.sccMergedVars +=
        static_cast<std::int64_t>(pending.size());
    return true;
}

/**
 * Rewrite the whole clause database through the substitution just
 * committed by sccEquivalenceReduce(): every literal is replaced by
 * its representative, then each clause is re-normalized exactly like
 * addClause() (satisfied/tautological clauses drop, duplicate and
 * root-false literals drop, units go to the root trail).  Long
 * clauses are re-allocated only when touched; the binary lists are
 * rebuilt wholesale, which also restores watcher-pair symmetry.
 * Afterwards no substituted variable appears anywhere in the solver -
 * the extended checkInvariants() asserts exactly that.
 */
void
Solver::applyEquivalences()
{
    qbAssert(decisionLevel() == 0, "substitution above root level");
    // Root assignments keep their values, but their reason clauses
    // may be rewritten or dissolved below - drop the references (root
    // facts need no justification; see preprocessEliminate()).
    for (const Lit l : trail)
        reasons[l.var()] = Reason();
    for (auto *list : {&problemClauses, &learntClauses}) {
        for (std::size_t i = 0; i < list->size();) {
            const ClauseRef cr = (*list)[i];
            Clause &c = ca[cr];
            bool touched = false;
            for (const Lit l : c)
                touched |= substituted[l.var()] != 0;
            if (!touched) {
                ++i;
                continue;
            }
            LitVec lits;
            lits.reserve(c.size());
            for (const Lit l : c)
                lits.push_back(representativeOf(l));
            const bool learnt = c.learnt();
            const bool imported = c.imported();
            const unsigned lbd = c.lbd();
            const float act = c.activity();
            std::sort(lits.begin(), lits.end());
            LitVec kept;
            bool dropClause = false;
            Lit prev = kUndefLit;
            for (const Lit l : lits) {
                if (value(l) == LBool::True ||
                    (prev != kUndefLit && l == ~prev)) {
                    dropClause = true; // satisfied or tautological
                    break;
                }
                if (value(l) == LBool::False || l == prev)
                    continue;
                kept.push_back(l);
                prev = l;
            }
            detachClause(cr);
            purgeDeferredOtf(cr);
            ca.free(cr);
            if (!dropClause && kept.size() >= 3) {
                const ClauseRef nr = ca.alloc(
                    kept, learnt,
                    std::min(lbd,
                             static_cast<unsigned>(kept.size())),
                    imported, act);
                (*list)[i] = nr;
                attachClause(nr);
                ++i;
                continue;
            }
            (*list)[i] = list->back();
            list->pop_back();
            if (dropClause)
                continue;
            if (kept.size() == 2) {
                attachBinary(kept[0], kept[1], learnt);
                continue;
            }
            if (kept.size() == 1) {
                // kept holds only root-unassigned literals.
                uncheckedEnqueue(kept[0], Reason());
                continue;
            }
            okay = false; // every literal false at the root
            return;
        }
    }
    // Rebuild the binary lists through the substitution.
    struct BinClause
    {
        Lit a, b;
        bool learnt;
    };
    std::vector<BinClause> bins;
    for (std::size_t idx = 0; idx < binWatches.size(); ++idx) {
        const Lit a = ~litFromIndex(idx);
        for (const BinWatcher &w : binWatches[idx])
            if (a < w.other)
                bins.push_back({a, w.other, w.learnt});
    }
    for (auto &list : binWatches)
        list.clear();
    for (const BinClause &bc : bins) {
        const Lit a = representativeOf(bc.a);
        const Lit b = representativeOf(bc.b);
        if (a == ~b)
            continue; // tautology
        if (value(a) == LBool::True || value(b) == LBool::True)
            continue;
        Lit unit = kUndefLit;
        if (a == b || value(b) == LBool::False)
            unit = a;
        else if (value(a) == LBool::False)
            unit = b;
        if (unit != kUndefLit) {
            if (value(unit) == LBool::False) {
                okay = false;
                return;
            }
            if (value(unit) == LBool::Undef)
                uncheckedEnqueue(unit, Reason());
            continue;
        }
        attachBinary(a, b, bc.learnt);
    }
    notePeaks();
    okay = propagate() == kRefUndef;
}

/**
 * Failed-literal probing at the roots of the binary implication
 * graph: literals with binary successors but no binary predecessor
 * (anything a non-root implies is probed transitively for free when
 * its root fails, so roots give the best coverage per propagation).
 * A probe that conflicts proves the negation as a root unit, learnt
 * through the regular first-UIP analysis; a quiet probe is mined for
 * lazy hyper-binary resolvents: every trail literal x justified by a
 * LONG clause gains the edge probe -> x (binary-justified literals
 * already have a graph path, the new edge would only feed transitive
 * reduction).  Budgeted in propagations like vivification.
 */
void
Solver::probeFailedLiterals()
{
    std::int64_t budget = cfg.probePropBudget;
    LitVec learnt;
    int btlevel = 0;
    unsigned lbd = 0;
    // Probing assigns and retracts whole propagation cones, and
    // uncheckedEnqueue records each assignment as the variable's
    // saved phase.  Left alone that would replace the configured
    // initial polarity of every probed cone with probe-derived
    // values and measurably degrade the subsequent search (the probe
    // order has nothing to do with good phases).  Restore the saved
    // phases when the pass is done.
    const std::vector<bool> savedPolarity = polarity;
    struct PhaseGuard
    {
        std::vector<bool> &live;
        const std::vector<bool> &saved;
        ~PhaseGuard() { live = saved; }
    } phaseGuard{polarity, savedPolarity};
    for (std::size_t idx = 0;
         idx < binWatches.size() && okay && budget > 0; ++idx) {
        if (binWatches[idx].empty())
            continue;
        const Lit l = litFromIndex(idx);
        if (assigns[l.var()] != LBool::Undef)
            continue;
        if (!binWatches[(~l).index()].empty())
            continue; // not a root: something implies l
        trailLim.push_back(static_cast<int>(trail.size()));
        uncheckedEnqueue(l, Reason());
        const std::int64_t before = statistics.propagations;
        const ClauseRef confl = propagate();
        budget -= statistics.propagations - before;
        if (confl != kRefUndef) {
            ++statistics.probedFailed;
            analyze(confl, learnt, btlevel, lbd);
            otfCandidates.clear(); // no search() to apply them
            cancelUntil(0);
            // All other literals in a level-1 conflict sit at level 0
            // and analyze() excludes those: the learnt clause is the
            // asserting unit ~(failed prefix) alone.
            qbAssert(learnt.size() == 1,
                     "probe conflict must yield a unit");
            const Lit unit = learnt[0];
            if (value(unit) == LBool::False) {
                okay = false;
                return;
            }
            if (value(unit) == LBool::Undef) {
                uncheckedEnqueue(unit, Reason());
                if (propagate() != kRefUndef) {
                    okay = false;
                    return;
                }
            }
            continue;
        }
        const auto base = static_cast<std::size_t>(trailLim.back());
        for (std::size_t t = base + 1; t < trail.size(); ++t) {
            const Lit x = trail[t];
            if (reasons[x.var()].isClause() &&
                attachBinary(~l, x, /*learnt=*/true))
                ++statistics.hyperBinaries;
        }
        cancelUntil(0);
    }
}

/**
 * Transitive reduction of the binary implication graph.  One DFS
 * forest assigns discovery/finish stamps; its tree edges are the
 * WITNESS set, keyed per CLAUSE (unordered literal pair) so a clause
 * that is a tree edge in either direction is never removed - every
 * removal below is therefore justified by a path of permanently-kept
 * clauses, with no circular "A covered by B, B covered by A" risk.
 * Within each watch list, sorted by successor discovery stamp, a
 * running cover horizon (max finish stamp over witness successors
 * seen so far) identifies covered edges in one pass: disc[s] <
 * disc[v] < fin[s] puts v inside witness-successor s's DFS subtree,
 * i.e. reachable from s through tree edges alone.  The stamp order
 * and the sort are deterministic, so reduction is identical across
 * --jobs configurations.
 */
void
Solver::transitiveReduce()
{
    const std::size_t n = binWatches.size();
    std::vector<std::uint32_t> disc(n, 0);
    std::vector<std::uint32_t> fin(n, 0);
    std::uint32_t stamp = 0;
    std::unordered_set<std::uint64_t> witness;
    const auto clauseKey = [](Lit x, Lit y) {
        auto xi = static_cast<std::uint64_t>(x.index());
        auto yi = static_cast<std::uint64_t>(y.index());
        if (xi > yi)
            std::swap(xi, yi);
        return (xi << 32) | yi;
    };
    struct Frame
    {
        std::uint32_t node;
        std::uint32_t child;
    };
    std::vector<Frame> dfs;
    for (std::size_t root = 0; root < n; ++root) {
        if (disc[root] != 0 || binWatches[root].empty())
            continue;
        if (assigns[litFromIndex(root).var()] != LBool::Undef)
            continue;
        disc[root] = ++stamp;
        dfs.push_back({static_cast<std::uint32_t>(root), 0});
        while (!dfs.empty()) {
            Frame &f = dfs.back();
            if (f.child < binWatches[f.node].size()) {
                const Lit to = binWatches[f.node][f.child++].other;
                const auto v =
                    static_cast<std::uint32_t>(to.index());
                if (disc[v] == 0) {
                    disc[v] = ++stamp;
                    witness.insert(
                        clauseKey(~litFromIndex(f.node), to));
                    dfs.push_back({v, 0});
                }
                continue;
            }
            fin[f.node] = ++stamp;
            dfs.pop_back();
        }
    }
    for (std::size_t u = 0; u < n; ++u) {
        auto &list = binWatches[u];
        if (list.size() < 2)
            continue;
        if (assigns[litFromIndex(u).var()] != LBool::Undef)
            continue;
        const Lit back = ~litFromIndex(u);
        std::sort(list.begin(), list.end(),
                  [&disc](const BinWatcher &x, const BinWatcher &y) {
                      return disc[x.other.index()] <
                             disc[y.other.index()];
                  });
        std::uint32_t coverEnd = 0;
        std::vector<BinWatcher> keptList;
        keptList.reserve(list.size());
        for (const BinWatcher &w : list) {
            const auto v =
                static_cast<std::uint32_t>(w.other.index());
            if (witness.count(clauseKey(back, w.other)) != 0) {
                keptList.push_back(w);
                coverEnd = std::max(coverEnd, fin[v]);
                continue;
            }
            if (disc[v] < coverEnd) {
                // Covered: drop the clause - this entry plus its
                // mirror (never in this same list: a self-mirroring
                // entry would be the degenerate clause (l | l),
                // which attachBinary() rejects).
                auto &mirror = binWatches[(~w.other).index()];
                for (std::size_t k = 0; k < mirror.size(); ++k) {
                    if (mirror[k].other == back) {
                        mirror[k] = mirror.back();
                        mirror.pop_back();
                        break;
                    }
                }
                ++statistics.transitiveReduced;
                ++statistics.removedClauses;
                continue;
            }
            keptList.push_back(w);
        }
        list.swap(keptList);
    }
}

SolveResult
solveCnf(const Cnf &cnf, SolverConfig config, SolverStats *stats_out)
{
    Solver solver(config);
    solver.addCnf(cnf);
    const SolveResult result = solver.solve();
    if (stats_out)
        *stats_out = solver.stats();
    return result;
}

} // namespace qb::sat
