#include "sat/cnf.h"

#include <algorithm>
#include <sstream>

#include "support/logging.h"
#include "support/strings.h"

namespace qb::sat {

void
Cnf::addClause(LitVec lits)
{
    std::sort(lits.begin(), lits.end());
    lits.erase(std::unique(lits.begin(), lits.end()), lits.end());
    for (std::size_t i = 0; i + 1 < lits.size(); ++i) {
        if (lits[i].var() == lits[i + 1].var())
            return; // tautology: v and ~v both present
    }
    for (Lit l : lits)
        ensureVars(l.var() + 1);
    if (lits.empty())
        trivialConflict_ = true;
    clauses_.push_back(std::move(lits));
}

std::size_t
Cnf::numLiterals() const
{
    std::size_t n = 0;
    for (const LitVec &c : clauses_)
        n += c.size();
    return n;
}

bool
Cnf::satisfiedBy(const std::vector<LBool> &assignment) const
{
    if (trivialConflict_)
        return false;
    for (const LitVec &c : clauses_) {
        bool sat = false;
        for (Lit l : c) {
            if (l.var() < static_cast<Var>(assignment.size()) &&
                assignment[l.var()] == lboolOf(!l.sign())) {
                sat = true;
                break;
            }
        }
        if (!sat)
            return false;
    }
    return true;
}

std::string
Cnf::toDimacs() const
{
    std::string out =
        format("p cnf %d %zu\n", numVars_, clauses_.size());
    for (const LitVec &c : clauses_) {
        for (Lit l : c)
            out += format("%d ", (l.sign() ? -1 : 1) * (l.var() + 1));
        out += "0\n";
    }
    return out;
}

Cnf
Cnf::fromDimacs(const std::string &text)
{
    Cnf cnf;
    std::istringstream in(text);
    std::string tok;
    bool saw_header = false;
    Var declared_vars = 0;
    long declared_clauses = 0;
    LitVec current;
    while (in >> tok) {
        if (tok == "c") {
            std::string rest;
            std::getline(in, rest);
            continue;
        }
        if (tok == "p") {
            std::string kind;
            in >> kind >> declared_vars >> declared_clauses;
            if (kind != "cnf")
                fatal("DIMACS: expected 'p cnf' header, got 'p " +
                      kind + "'");
            cnf.ensureVars(declared_vars);
            saw_header = true;
            continue;
        }
        long v;
        try {
            v = std::stol(tok);
        } catch (const std::exception &) {
            fatal("DIMACS: unexpected token '" + tok + "'");
        }
        if (!saw_header)
            fatal("DIMACS: literal before 'p cnf' header");
        if (v == 0) {
            cnf.addClause(current);
            current.clear();
        } else {
            const Var var = static_cast<Var>(std::labs(v)) - 1;
            current.push_back(mkLit(var, v < 0));
        }
    }
    if (!current.empty())
        fatal("DIMACS: clause not terminated by 0");
    return cnf;
}

} // namespace qb::sat
