#include "sat/cnf.h"

#include <algorithm>
#include <sstream>

#include "sat/dimacs.h"

namespace qb::sat {

void
Cnf::addClause(LitVec lits)
{
    std::sort(lits.begin(), lits.end());
    lits.erase(std::unique(lits.begin(), lits.end()), lits.end());
    for (std::size_t i = 0; i + 1 < lits.size(); ++i) {
        if (lits[i].var() == lits[i + 1].var())
            return; // tautology: v and ~v both present
    }
    for (Lit l : lits)
        ensureVars(l.var() + 1);
    if (lits.empty())
        trivialConflict_ = true;
    clauses_.push_back(std::move(lits));
}

std::size_t
Cnf::numLiterals() const
{
    std::size_t n = 0;
    for (const LitVec &c : clauses_)
        n += c.size();
    return n;
}

bool
Cnf::satisfiedBy(const std::vector<LBool> &assignment) const
{
    if (trivialConflict_)
        return false;
    return validateModel(clauses_, assignment);
}

std::string
Cnf::toDimacs() const
{
    return writeDimacsString(*this);
}

Cnf
Cnf::fromDimacs(const std::string &text)
{
    std::istringstream in(text);
    return readDimacsOrThrow(in);
}

bool
validateModel(const std::vector<LitVec> &clauses,
              const std::vector<LBool> &model,
              std::size_t *failed_clause)
{
    for (std::size_t i = 0; i < clauses.size(); ++i) {
        bool sat = false;
        for (Lit l : clauses[i]) {
            if (l.var() < static_cast<Var>(model.size()) &&
                model[l.var()] == lboolOf(!l.sign())) {
                sat = true;
                break;
            }
        }
        if (!sat) {
            if (failed_clause != nullptr)
                *failed_clause = i;
            return false;
        }
    }
    return true;
}

} // namespace qb::sat
