#include "sat/tseitin.h"

#include <unordered_set>
#include <vector>

#include "sat/solver.h"
#include "support/logging.h"

namespace qb::sat {

namespace {

using bexp::Arena;
using bexp::NodeKind;
using bexp::NodeRef;

/**
 * Direct clausal expansion of out = xor(inputs): forbid every
 * odd-parity assignment of (out, inputs).  @p emit receives each
 * clause; shared by the one-shot and incremental encoders.
 */
template <typename Emit>
void
expandXorDefinition(Lit out, const std::vector<Lit> &inputs,
                    Emit &&emit)
{
    const std::size_t k = inputs.size();
    qbAssert(k >= 1 && k <= 30, "XOR definition arity out of range");
    std::vector<Lit> all;
    all.push_back(out);
    all.insert(all.end(), inputs.begin(), inputs.end());
    const std::size_t n = all.size();
    for (std::uint32_t a = 0; a < (1u << n); ++a) {
        if (__builtin_popcount(a) % 2 == 0)
            continue; // even parity satisfies out ^ xor(inputs) = 0
        LitVec clause;
        clause.reserve(n);
        for (std::size_t i = 0; i < n; ++i) {
            const bool bit = (a >> i) & 1u;
            // Literal false under the forbidden assignment.
            clause.push_back(bit ? ~all[i] : all[i]);
        }
        emit(std::move(clause));
    }
}

/** Working state for one encoding run. */
struct Encoder
{
    const Arena &arena;
    TseitinMode mode;
    unsigned xorChunk;
    TseitinResult result;
    std::unordered_map<NodeRef, Lit> litOf;
    // Polarities under which each node is referenced (PG mode).
    std::unordered_map<NodeRef, unsigned> polarity; // bit0 pos, bit1 neg

    void computePolarities(NodeRef root);
    Lit encode(NodeRef root);
    Lit defineXorChain(const std::vector<Lit> &inputs);
    void emitXorDefinition(Lit out, const std::vector<Lit> &inputs);
};

void
Encoder::computePolarities(NodeRef root)
{
    std::vector<std::pair<NodeRef, unsigned>> stack{{root, 1u}};
    while (!stack.empty()) {
        auto [ref, pol] = stack.back();
        stack.pop_back();
        unsigned &cur = polarity[ref];
        if ((cur & pol) == pol)
            continue;
        cur |= pol;
        const NodeKind k = arena.kind(ref);
        if (k == NodeKind::And) {
            for (NodeRef c : arena.children(ref))
                stack.emplace_back(c, pol);
        } else if (k == NodeKind::Xor) {
            // XOR is non-monotone: children occur in both polarities,
            // except the pure-negation case which just flips.
            const auto kids = arena.children(ref);
            const bool negation =
                kids.size() == 2 && kids[0] == bexp::kTrue;
            for (NodeRef c : kids) {
                if (c == bexp::kTrue)
                    continue;
                if (negation) {
                    const unsigned flipped =
                        ((pol & 1u) << 1) | ((pol >> 1) & 1u);
                    stack.emplace_back(c, flipped);
                } else {
                    stack.emplace_back(c, 3u);
                }
            }
        }
    }
}

void
Encoder::emitXorDefinition(Lit out, const std::vector<Lit> &inputs)
{
    expandXorDefinition(out, inputs, [this](LitVec clause) {
        result.cnf.addClause(std::move(clause));
    });
}

Lit
Encoder::defineXorChain(const std::vector<Lit> &inputs)
{
    qbAssert(!inputs.empty(), "empty XOR chain");
    if (inputs.size() == 1)
        return inputs[0];
    // A group below {acc, one input} cannot make progress.
    const unsigned chunk = xorChunk < 2 ? 2 : xorChunk;
    std::size_t pos = 0;
    Lit acc = inputs[pos++];
    while (pos < inputs.size()) {
        std::vector<Lit> group{acc};
        while (pos < inputs.size() && group.size() < chunk)
            group.push_back(inputs[pos++]);
        const Lit out = mkLit(result.cnf.newVar());
        emitXorDefinition(out, group);
        acc = out;
    }
    return acc;
}

Lit
Encoder::encode(NodeRef root)
{
    std::vector<std::pair<NodeRef, bool>> stack{{root, false}};
    while (!stack.empty()) {
        auto [ref, expanded] = stack.back();
        stack.pop_back();
        if (litOf.count(ref))
            continue;
        const NodeKind k = arena.kind(ref);
        switch (k) {
          case NodeKind::Const:
            panic("constant below the root must have been folded");
          case NodeKind::Var: {
            const Var v = result.cnf.newVar();
            result.inputVar.emplace(arena.varId(ref), v);
            result.nodeVar.emplace(ref, v);
            litOf.emplace(ref, mkLit(v));
            break;
          }
          case NodeKind::And:
          case NodeKind::Xor: {
            if (!expanded) {
                stack.emplace_back(ref, true);
                for (NodeRef c : arena.children(ref))
                    if (c != bexp::kTrue)
                        stack.emplace_back(c, false);
                break;
            }
            std::vector<Lit> kids;
            bool flip = false;
            for (NodeRef c : arena.children(ref)) {
                if (c == bexp::kTrue) {
                    flip = true; // only XOR carries a TRUE child
                    continue;
                }
                kids.push_back(litOf.at(c));
            }
            if (k == NodeKind::Xor) {
                // Pure negation and small chains need no output var of
                // their own; the chain's last literal stands for them.
                Lit out = defineXorChain(kids);
                if (flip)
                    out = ~out;
                litOf.emplace(ref, out);
            } else {
                const Var v = result.cnf.newVar();
                const Lit out = mkLit(v);
                const unsigned pol = mode == TseitinMode::Full
                    ? 3u
                    : polarity[ref];
                if (pol & 1u) {
                    for (Lit l : kids)
                        result.cnf.addBinary(~out, l);
                }
                if (pol & 2u) {
                    LitVec clause;
                    clause.reserve(kids.size() + 1);
                    clause.push_back(out);
                    for (Lit l : kids)
                        clause.push_back(~l);
                    result.cnf.addClause(std::move(clause));
                }
                result.nodeVar.emplace(ref, v);
                litOf.emplace(ref, out);
            }
            break;
          }
        }
    }
    return litOf.at(root);
}

} // namespace

TseitinResult
encodeAssertTrue(const bexp::Arena &arena, bexp::NodeRef root,
                 TseitinMode mode, unsigned xor_chunk)
{
    Encoder enc{arena, mode, xor_chunk, {}, {}, {}};
    if (arena.isConst(root)) {
        enc.result.rootIsConst = true;
        enc.result.rootConstValue = arena.constValue(root);
        return std::move(enc.result);
    }
    if (mode == TseitinMode::PlaistedGreenbaum)
        enc.computePolarities(root);
    const Lit root_lit = enc.encode(root);
    enc.result.cnf.addUnit(root_lit);
    return std::move(enc.result);
}

IncrementalTseitin::IncrementalTseitin(const bexp::Arena &arena_in,
                                       Solver &solver_in,
                                       TseitinMode mode_in,
                                       unsigned xor_chunk)
    : arena(arena_in), solver(solver_in), mode(mode_in),
      xorChunk(xor_chunk)
{
    qbAssert(xorChunk >= 1, "xorChunk must be positive");
}

void
IncrementalTseitin::markSessionShared()
{
    qbAssert(selectorsCreated_ == 0,
             "markSessionShared after assertCondition");
    sharedMark = static_cast<bexp::NodeRef>(arena.numNodes());
}

Var
IncrementalTseitin::freshVar()
{
    ++varsCreated_;
    return solver.newVar();
}

void
IncrementalTseitin::emitClause(LitVec lits)
{
    ++clausesEmitted_;
    solver.addClause(std::move(lits));
}

void
IncrementalTseitin::growPolarities(NodeRef root)
{
    // Accumulate needed polarities across calls; only nodes whose mask
    // grows are (re)visited.  Full mode wants both directions of every
    // definition, PG mode only the direction(s) each reference uses.
    const unsigned root_pol =
        mode == TseitinMode::PlaistedGreenbaum ? 1u : 3u;
    std::vector<std::pair<NodeRef, unsigned>> stack{{root, root_pol}};
    while (!stack.empty()) {
        auto [ref, pol] = stack.back();
        stack.pop_back();
        unsigned &cur = polarity[ref];
        if ((cur & pol) == pol)
            continue;
        cur |= pol;
        const NodeKind k = arena.kind(ref);
        if (k == NodeKind::And) {
            for (NodeRef c : arena.children(ref))
                stack.emplace_back(c, pol);
        } else if (k == NodeKind::Xor) {
            // XOR is non-monotone: children occur in both polarities,
            // except the pure-negation case which just flips.
            const auto kids = arena.children(ref);
            const bool negation =
                kids.size() == 2 && kids[0] == bexp::kTrue;
            for (NodeRef c : kids) {
                if (c == bexp::kTrue)
                    continue;
                if (negation) {
                    const unsigned flipped =
                        ((pol & 1u) << 1) | ((pol >> 1) & 1u);
                    stack.emplace_back(c, flipped);
                } else {
                    stack.emplace_back(c, 3u);
                }
            }
        }
    }
}

Lit
IncrementalTseitin::defineXorChain(Lit guard,
                                   const std::vector<Lit> &inputs)
{
    qbAssert(!inputs.empty(), "empty XOR chain");
    if (inputs.size() == 1)
        return inputs[0];
    // A group below {acc, one input} cannot make progress.
    const unsigned chunk = xorChunk < 2 ? 2 : xorChunk;
    std::size_t pos = 0;
    Lit acc = inputs[pos++];
    while (pos < inputs.size()) {
        std::vector<Lit> group{acc};
        while (pos < inputs.size() && group.size() < chunk)
            group.push_back(inputs[pos++]);
        const Lit out = mkLit(freshVar());
        expandXorDefinition(out, group, [this, guard](LitVec clause) {
            if (guard != kUndefLit)
                clause.push_back(guard);
            emitClause(std::move(clause));
        });
        acc = out;
    }
    return acc;
}

Lit
IncrementalTseitin::encode(NodeRef root)
{
    std::vector<std::pair<NodeRef, bool>> stack{{root, false}};
    while (!stack.empty()) {
        auto [ref, expanded] = stack.back();
        stack.pop_back();
        const unsigned need = polarity.at(ref);
        const unsigned done =
            emittedPol.count(ref) ? emittedPol.at(ref) : 0u;
        if (!expanded && litOf.count(ref) && (done & need) == need)
            continue; // node and (transitively) its children covered
        const NodeKind k = arena.kind(ref);
        switch (k) {
          case NodeKind::Const:
            panic("constant below the root must have been folded");
          case NodeKind::Var: {
            if (!litOf.count(ref)) {
                const Var v = freshVar();
                inputVar_.emplace(arena.varId(ref), v);
                litOf.emplace(ref, mkLit(v));
            }
            emittedPol[ref] = 3u; // inputs have no defining clauses
            break;
          }
          case NodeKind::And:
          case NodeKind::Xor: {
            if (!expanded) {
                stack.emplace_back(ref, true);
                for (NodeRef c : arena.children(ref))
                    if (c != bexp::kTrue)
                        stack.emplace_back(c, false);
                break;
            }
            std::vector<Lit> kids;
            bool flip = false;
            for (NodeRef c : arena.children(ref)) {
                if (c == bexp::kTrue) {
                    flip = true; // only XOR carries a TRUE child
                    continue;
                }
                kids.push_back(litOf.at(c));
            }
            const bool shared = ref < sharedMark;
            if (k == NodeKind::Xor) {
                if (kids.size() == 1) {
                    // Pure negation: an alias with no clauses of its
                    // own.  Its coverage is exactly the child's under
                    // the flipped polarity - claiming more (e.g. 3)
                    // would prune later traversals at the alias and
                    // leave the child's other direction unemitted.
                    const NodeRef child =
                        arena.children(ref)[0] == bexp::kTrue
                            ? arena.children(ref)[1]
                            : arena.children(ref)[0];
                    if (!litOf.count(ref))
                        litOf.emplace(ref, flip ? ~kids[0] : kids[0]);
                    const unsigned child_done =
                        emittedPol.count(child)
                            ? emittedPol.at(child)
                            : 0u;
                    emittedPol[ref] = flip
                        ? ((child_done & 1u) << 1) |
                            ((child_done >> 1) & 1u)
                        : child_done;
                } else {
                    // Parity clauses define both directions at once,
                    // so a real XOR is complete after first emission
                    // (its children were required at polarity 3).
                    if (!litOf.count(ref)) {
                        Lit guard = kUndefLit;
                        if (!shared) {
                            const Lit act = mkLit(freshVar());
                            actOf.emplace(ref, act);
                            guard = ~act;
                        }
                        Lit out = defineXorChain(guard, kids);
                        if (flip)
                            out = ~out;
                        litOf.emplace(ref, out);
                    }
                    emittedPol[ref] = 3u;
                }
            } else {
                if (!litOf.count(ref)) {
                    litOf.emplace(ref, mkLit(freshVar()));
                    if (!shared)
                        actOf.emplace(ref, mkLit(freshVar()));
                }
                const Lit out = litOf.at(ref);
                const Lit guard =
                    shared ? kUndefLit : ~actOf.at(ref);
                // Lazy polarity completion: emit only the clause
                // direction(s) this call newly requires.
                const unsigned missing = need & ~done;
                if (missing & 1u) {
                    for (Lit l : kids) {
                        if (guard != kUndefLit)
                            emitClause({guard, ~out, l});
                        else
                            emitClause({~out, l});
                    }
                }
                if (missing & 2u) {
                    LitVec clause;
                    clause.reserve(kids.size() + 2);
                    if (guard != kUndefLit)
                        clause.push_back(guard);
                    clause.push_back(out);
                    for (Lit l : kids)
                        clause.push_back(~l);
                    emitClause(std::move(clause));
                }
                emittedPol[ref] = done | need;
            }
            break;
          }
        }
    }
    return litOf.at(root);
}

void
IncrementalTseitin::emitActivation(NodeRef root, Lit selector)
{
    // Assuming the selector must switch on the definitions of every
    // node in the condition's cone: one binary clause per node.  This
    // is what scopes a query's propagation to its own cone.
    std::vector<NodeRef> stack{root};
    std::unordered_set<NodeRef> visited;
    while (!stack.empty()) {
        const NodeRef ref = stack.back();
        stack.pop_back();
        // Session-shared subtrees are unguarded throughout (children
        // always precede parents in the arena), so prune there.
        if (arena.isConst(ref) || ref < sharedMark ||
            !visited.insert(ref).second)
            continue;
        const auto act = actOf.find(ref);
        if (act != actOf.end())
            emitClause({~selector, act->second});
        const NodeKind k = arena.kind(ref);
        if (k == NodeKind::And || k == NodeKind::Xor) {
            for (NodeRef c : arena.children(ref))
                stack.push_back(c);
        }
    }
}

IncrementalTseitin::Selector
IncrementalTseitin::assertCondition(NodeRef root)
{
    const auto it = selectorOf.find(root);
    if (it != selectorOf.end())
        return it->second;
    Selector sel;
    if (arena.isConst(root)) {
        sel.rootIsConst = true;
        sel.rootConstValue = arena.constValue(root);
    } else {
        growPolarities(root);
        const Lit root_lit = encode(root);
        sel.lit = mkLit(freshVar());
        emitClause({~sel.lit, root_lit});
        emitActivation(root, sel.lit);
        ++selectorsCreated_;
    }
    selectorOf.emplace(root, sel);
    return sel;
}

} // namespace qb::sat
