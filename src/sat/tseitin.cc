#include "sat/tseitin.h"

#include <vector>

#include "support/logging.h"

namespace qb::sat {

namespace {

using bexp::Arena;
using bexp::NodeKind;
using bexp::NodeRef;

/** Working state for one encoding run. */
struct Encoder
{
    const Arena &arena;
    TseitinMode mode;
    unsigned xorChunk;
    TseitinResult result;
    std::unordered_map<NodeRef, Lit> litOf;
    // Polarities under which each node is referenced (PG mode).
    std::unordered_map<NodeRef, unsigned> polarity; // bit0 pos, bit1 neg

    void computePolarities(NodeRef root);
    Lit encode(NodeRef root);
    Lit defineXorChain(const std::vector<Lit> &inputs);
    void emitXorDefinition(Lit out, const std::vector<Lit> &inputs);
};

void
Encoder::computePolarities(NodeRef root)
{
    std::vector<std::pair<NodeRef, unsigned>> stack{{root, 1u}};
    while (!stack.empty()) {
        auto [ref, pol] = stack.back();
        stack.pop_back();
        unsigned &cur = polarity[ref];
        if ((cur & pol) == pol)
            continue;
        cur |= pol;
        const NodeKind k = arena.kind(ref);
        if (k == NodeKind::And) {
            for (NodeRef c : arena.children(ref))
                stack.emplace_back(c, pol);
        } else if (k == NodeKind::Xor) {
            // XOR is non-monotone: children occur in both polarities,
            // except the pure-negation case which just flips.
            const auto kids = arena.children(ref);
            const bool negation =
                kids.size() == 2 && kids[0] == bexp::kTrue;
            for (NodeRef c : kids) {
                if (c == bexp::kTrue)
                    continue;
                if (negation) {
                    const unsigned flipped =
                        ((pol & 1u) << 1) | ((pol >> 1) & 1u);
                    stack.emplace_back(c, flipped);
                } else {
                    stack.emplace_back(c, 3u);
                }
            }
        }
    }
}

void
Encoder::emitXorDefinition(Lit out, const std::vector<Lit> &inputs)
{
    // Direct clausal expansion of out = xor(inputs): forbid every
    // odd-parity assignment of (out, inputs).
    const std::size_t k = inputs.size();
    qbAssert(k >= 1 && k <= 30, "XOR definition arity out of range");
    std::vector<Lit> all;
    all.push_back(out);
    all.insert(all.end(), inputs.begin(), inputs.end());
    const std::size_t n = all.size();
    for (std::uint32_t a = 0; a < (1u << n); ++a) {
        if (__builtin_popcount(a) % 2 == 0)
            continue; // even parity satisfies out ^ xor(inputs) = 0
        LitVec clause;
        clause.reserve(n);
        for (std::size_t i = 0; i < n; ++i) {
            const bool bit = (a >> i) & 1u;
            // Literal false under the forbidden assignment.
            clause.push_back(bit ? ~all[i] : all[i]);
        }
        result.cnf.addClause(std::move(clause));
    }
}

Lit
Encoder::defineXorChain(const std::vector<Lit> &inputs)
{
    qbAssert(!inputs.empty(), "empty XOR chain");
    if (inputs.size() == 1)
        return inputs[0];
    std::size_t pos = 0;
    Lit acc = inputs[pos++];
    while (pos < inputs.size()) {
        std::vector<Lit> group{acc};
        while (pos < inputs.size() && group.size() < xorChunk)
            group.push_back(inputs[pos++]);
        const Lit out = mkLit(result.cnf.newVar());
        emitXorDefinition(out, group);
        acc = out;
    }
    return acc;
}

Lit
Encoder::encode(NodeRef root)
{
    std::vector<std::pair<NodeRef, bool>> stack{{root, false}};
    while (!stack.empty()) {
        auto [ref, expanded] = stack.back();
        stack.pop_back();
        if (litOf.count(ref))
            continue;
        const NodeKind k = arena.kind(ref);
        switch (k) {
          case NodeKind::Const:
            panic("constant below the root must have been folded");
          case NodeKind::Var: {
            const Var v = result.cnf.newVar();
            result.inputVar.emplace(arena.varId(ref), v);
            result.nodeVar.emplace(ref, v);
            litOf.emplace(ref, mkLit(v));
            break;
          }
          case NodeKind::And:
          case NodeKind::Xor: {
            if (!expanded) {
                stack.emplace_back(ref, true);
                for (NodeRef c : arena.children(ref))
                    if (c != bexp::kTrue)
                        stack.emplace_back(c, false);
                break;
            }
            std::vector<Lit> kids;
            bool flip = false;
            for (NodeRef c : arena.children(ref)) {
                if (c == bexp::kTrue) {
                    flip = true; // only XOR carries a TRUE child
                    continue;
                }
                kids.push_back(litOf.at(c));
            }
            if (k == NodeKind::Xor) {
                // Pure negation and small chains need no output var of
                // their own; the chain's last literal stands for them.
                Lit out = defineXorChain(kids);
                if (flip)
                    out = ~out;
                litOf.emplace(ref, out);
            } else {
                const Var v = result.cnf.newVar();
                const Lit out = mkLit(v);
                const unsigned pol = mode == TseitinMode::Full
                    ? 3u
                    : polarity[ref];
                if (pol & 1u) {
                    for (Lit l : kids)
                        result.cnf.addBinary(~out, l);
                }
                if (pol & 2u) {
                    LitVec clause;
                    clause.reserve(kids.size() + 1);
                    clause.push_back(out);
                    for (Lit l : kids)
                        clause.push_back(~l);
                    result.cnf.addClause(std::move(clause));
                }
                result.nodeVar.emplace(ref, v);
                litOf.emplace(ref, out);
            }
            break;
          }
        }
    }
    return litOf.at(root);
}

} // namespace

TseitinResult
encodeAssertTrue(const bexp::Arena &arena, bexp::NodeRef root,
                 TseitinMode mode, unsigned xor_chunk)
{
    Encoder enc{arena, mode, xor_chunk, {}, {}, {}};
    if (arena.isConst(root)) {
        enc.result.rootIsConst = true;
        enc.result.rootConstValue = arena.constValue(root);
        return std::move(enc.result);
    }
    if (mode == TseitinMode::PlaistedGreenbaum)
        enc.computePolarities(root);
    const Lit root_lit = enc.encode(root);
    enc.result.cnf.addUnit(root_lit);
    return std::move(enc.result);
}

} // namespace qb::sat
