#include "circuits/paper_figures.h"

namespace qb::circuits {

using ir::Circuit;
using ir::Gate;

ir::Circuit
cccnotDirty()
{
    Circuit c(5, "cccnot-dirty (Fig. 1.3)");
    c.setLabel(0, "q1");
    c.setLabel(1, "q2");
    c.setLabel(2, "a");
    c.setLabel(3, "q3");
    c.setLabel(4, "q4");
    c.append(Gate::ccnot(0, 1, 2)); // Toffoli[q1, q2, a]
    c.append(Gate::ccnot(2, 3, 4)); // Toffoli[a, q3, q4]
    c.append(Gate::ccnot(0, 1, 2)); // Toffoli[q1, q2, a]
    c.append(Gate::ccnot(2, 3, 4)); // Toffoli[a, q3, q4]
    return c;
}

ir::Circuit
fig14Counterexample()
{
    Circuit c(2, "clean-safe but dirty-unsafe (Fig. 1.4)");
    c.setLabel(0, "a");
    c.setLabel(1, "b");
    c.append(Gate::cnot(0, 1));
    return c;
}

ir::Circuit
fig31Circuit()
{
    Circuit c(7, "two CCCNOT routines with dirty a1, a2 (Fig. 3.1a)");
    for (ir::QubitId q = 0; q < 5; ++q)
        c.setLabel(q, "q" + std::to_string(q + 1));
    c.setLabel(5, "a1");
    c.setLabel(6, "a2");
    c.append(Gate::cnot(1, 2));     // CNOT[q2, q3]
    c.append(Gate::ccnot(0, 1, 5)); // Toffoli[q1, q2, a1]
    c.append(Gate::ccnot(5, 3, 4)); // Toffoli[a1, q4, q5]
    c.append(Gate::ccnot(0, 1, 5)); // Toffoli[q1, q2, a1]
    c.append(Gate::ccnot(5, 3, 4)); // Toffoli[a1, q4, q5]
    c.append(Gate::ccnot(3, 4, 6)); // Toffoli[q4, q5, a2]
    c.append(Gate::ccnot(6, 1, 0)); // Toffoli[a2, q2, q1]
    c.append(Gate::ccnot(3, 4, 6)); // Toffoli[q4, q5, a2]
    c.append(Gate::ccnot(6, 1, 0)); // Toffoli[a2, q2, q1]
    return c;
}

ir::Circuit
fig31Optimized()
{
    Circuit c(5, "Fig. 3.1c: q3 borrowed as a1 and a2");
    for (ir::QubitId q = 0; q < 5; ++q)
        c.setLabel(q, "q" + std::to_string(q + 1));
    c.append(Gate::cnot(1, 2));     // CNOT[q2, q3]
    c.append(Gate::ccnot(0, 1, 2)); // Toffoli[q1, q2, q3]  (a1 := q3)
    c.append(Gate::ccnot(2, 3, 4)); // Toffoli[q3, q4, q5]
    c.append(Gate::ccnot(0, 1, 2)); // Toffoli[q1, q2, q3]
    c.append(Gate::ccnot(2, 3, 4)); // Toffoli[q3, q4, q5]
    c.append(Gate::ccnot(3, 4, 2)); // Toffoli[q4, q5, q3]  (a2 := q3)
    c.append(Gate::ccnot(2, 1, 0)); // Toffoli[q3, q2, q1]
    c.append(Gate::ccnot(3, 4, 2)); // Toffoli[q4, q5, q3]
    c.append(Gate::ccnot(2, 1, 0)); // Toffoli[q3, q2, q1]
    return c;
}

std::string
fig44Source()
{
    return R"(// Figure 4.4: nested borrow statements
borrow@ q[5];
CNOT[q[2], q[3]];
borrow a1;
CCNOT[q[1], q[2], a1];
CCNOT[a1, q[4], q[5]];
CCNOT[q[1], q[2], a1];
CCNOT[a1, q[4], q[5]];
borrow a2;
CCNOT[q[4], q[5], a2];
CCNOT[a2, q[2], q[1]];
CCNOT[q[4], q[5], a2];
CCNOT[a2, q[2], q[1]];
release a2;
release a1;
)";
}

std::string
example52Source()
{
    return R"(// Example 5.2
borrow@ q;
X[q];
borrow a;
X[q];
X[a];
release a;
)";
}

} // namespace qb::circuits
