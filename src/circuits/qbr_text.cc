#include "circuits/qbr_text.h"

#include <stdexcept>

#include "support/strings.h"

namespace qb::circuits {

std::string
adderQbrSource(std::uint32_t n)
{
    // Below n = 3 the loop bounds invert and the emitted text indexes
    // qubits that do not exist: reject here with the standard
    // bad-argument exception instead of handing a broken program to
    // the parser (whose error would point at generated text the user
    // never wrote).
    if (n < 3)
        throw std::invalid_argument(
            format("adderQbrSource requires n >= 3 (got %u)", n));
    std::string out = format("// adder.qbr\nlet n = %u;\n", n);
    out += R"(borrow@ q[n]; // inputs: no assumptions, skip verification
borrow a[n - 1]; // dirty qubits
CNOT[a[n - 1], q[n]];
for i = (n - 1) to 2 {
    CNOT[q[i], a[i]];
    X[q[i]];
    CCNOT[a[i - 1], q[i], a[i]];
}
CNOT[q[1], a[1]];
for i = 2 to (n - 1) {
    CCNOT[a[i - 1], q[i], a[i]];
}
CNOT[a[n - 1], q[n]];
X[q[n]];

// reverse the circuit to uncompute
for i = (n - 1) to 2 {
    CCNOT[a[i - 1], q[i], a[i]];
}
CNOT[q[1], a[1]];
for i = 2 to (n - 1) {
    CCNOT[a[i - 1], q[i], a[i]];
    X[q[i]];
    CNOT[q[i], a[i]];
}
)";
    return out;
}

std::string
mcxQbrSource(std::uint32_t m)
{
    if (m < 4)
        throw std::invalid_argument(
            format("mcxQbrSource requires m >= 4 (got %u)", m));
    std::string out = format("// mcx.qbr\nlet m = %u;\n", m);
    out += R"(let n = m + (m - 1); // n-controlled NOT gate

borrow@ q[n];
borrow@ t;

borrow anc;

// first part
CCNOT[q[n - 1], q[n], anc];
for i = (m - 2) to 2 {
    CCNOT[q[2 * i], q[2 * i + 1], q[2 * i + 2]];
}
CCNOT[q[1], q[3], q[4]];
for i = 2 to (m - 2) {
    CCNOT[q[2 * i], q[2 * i + 1], q[2 * i + 2]];
}
CCNOT[q[n - 1], q[n], anc];
for i = (m - 2) to 2 {
    CCNOT[q[2 * i], q[2 * i + 1], q[2 * i + 2]];
}
CCNOT[q[1], q[3], q[4]];
for i = 2 to (m - 2) {
    CCNOT[q[2 * i], q[2 * i + 1], q[2 * i + 2]];
}

// second part
CCNOT[q[n], anc, t];
for i = (m - 1) to 3 {
    CCNOT[q[2 * i - 1], q[2 * i], q[2 * i + 1]];
}
CCNOT[q[2], q[4], q[5]];
for i = 3 to (m - 1) {
    CCNOT[q[2 * i - 1], q[2 * i], q[2 * i + 1]];
}
CCNOT[q[n], anc, t];
for i = (m - 1) to 3 {
    CCNOT[q[2 * i - 1], q[2 * i], q[2 * i + 1]];
}
CCNOT[q[2], q[4], q[5]];
for i = 3 to (m - 1) {
    CCNOT[q[2 * i - 1], q[2 * i], q[2 * i + 1]];
}

// third part
CCNOT[q[n - 1], q[n], anc];
for i = (m - 2) to 2 {
    CCNOT[q[2 * i], q[2 * i + 1], q[2 * i + 2]];
}
CCNOT[q[1], q[3], q[4]];
for i = 2 to (m - 2) {
    CCNOT[q[2 * i], q[2 * i + 1], q[2 * i + 2]];
}
CCNOT[q[n - 1], q[n], anc];
for i = (m - 2) to 2 {
    CCNOT[q[2 * i], q[2 * i + 1], q[2 * i + 2]];
}
CCNOT[q[1], q[3], q[4]];
for i = 2 to (m - 2) {
    CCNOT[q[2 * i], q[2 * i + 1], q[2 * i + 2]];
}

// fourth part
CCNOT[q[n], anc, t];
for i = (m - 1) to 3 {
    CCNOT[q[2 * i - 1], q[2 * i], q[2 * i + 1]];
}
CCNOT[q[2], q[4], q[5]];
for i = 3 to (m - 1) {
    CCNOT[q[2 * i - 1], q[2 * i], q[2 * i + 1]];
}
CCNOT[q[n], anc, t];

release anc;

for i = (m - 1) to 3 {
    CCNOT[q[2 * i - 1], q[2 * i], q[2 * i + 1]];
}
CCNOT[q[2], q[4], q[5]];
for i = 3 to (m - 1) {
    CCNOT[q[2 * i - 1], q[2 * i], q[2 * i + 1]];
}
)";
    return out;
}

std::string
binaryHeavyMcxQbrSource(std::uint32_t m)
{
    // Reuse the real benchmark program and wrap the dirty wire in a
    // self-inverse dressing borrowed from the adder's carry motif:
    // CNOT; X; CCNOT mixes the dirty wire into the AND arguments of
    // the ladder, which is exactly what gives the Tseitin encoding
    // nested conjunction sharing - the shape whose binary implication
    // graph carries equivalence cycles and transitively redundant
    // edges.  The plain ladder's graph is a tree: SCC and transitive
    // reduction provably find nothing there.
    std::string out = mcxQbrSource(m);
    const std::string decl = "borrow anc;\n";
    const std::string dress = R"(
// binary-heavy dressing (adder carry motif on the dirty wire)
CNOT[q[2], anc];
X[q[2]];
CCNOT[q[1], q[2], anc];
)";
    const std::string rel = "release anc;";
    const std::string undress =
        R"(// undo the dressing before the wire is released
CCNOT[q[1], q[2], anc];
X[q[2]];
CNOT[q[2], anc];

release anc;)";
    out.replace(out.find(decl), decl.size(), decl + dress);
    out.replace(out.find(rel), rel.size(), undress);
    return out;
}

std::string
randomQbrSource(Rng &rng, const RandomQbrOptions &options)
{
    if (options.minQubits < 3 || options.maxQubits < options.minQubits)
        throw std::invalid_argument(
            "randomQbrSource requires 3 <= minQubits <= maxQubits");
    if (options.maxBodyGates < options.minBodyGates)
        throw std::invalid_argument(
            "randomQbrSource requires minBodyGates <= maxBodyGates");
    const auto nq = static_cast<std::uint32_t>(
        options.minQubits +
        rng.nextBelow(options.maxQubits - options.minQubits + 1));
    std::string src = format("borrow@ q[%u];\n", nq);
    // One weighted-random gate over a shuffled operand pool; when
    // @p extra is non-empty it joins the pool (the borrowed wire).
    auto random_gate = [&](const std::string &extra) {
        std::vector<std::string> operands;
        operands.reserve(nq + 1);
        for (std::uint32_t i = 1; i <= nq; ++i)
            operands.push_back(format("q[%u]", i));
        if (!extra.empty())
            operands.push_back(extra);
        // Fisher-Yates via repeated swaps (deterministic in rng).
        for (std::size_t i = operands.size(); i > 1; --i)
            std::swap(operands[i - 1], operands[rng.nextBelow(i)]);
        const double total = options.xWeight + options.cnotWeight +
                             options.ccnotWeight;
        const double draw = rng.nextDouble() * total;
        if (draw < options.xWeight)
            return "X[" + operands[0] + "];\n";
        if (draw < options.xWeight + options.cnotWeight)
            return "CNOT[" + operands[0] + ", " + operands[1] +
                   "];\n";
        return "CCNOT[" + operands[0] + ", " + operands[1] + ", " +
               operands[2] + "];\n";
    };
    const auto prefix = static_cast<std::uint32_t>(
        rng.nextBelow(options.maxPrefixGates + 1));
    for (std::uint32_t i = 0; i < prefix; ++i)
        src += random_gate("");
    src += "borrow a;\n";
    const auto body = static_cast<std::uint32_t>(
        options.minBodyGates +
        rng.nextBelow(options.maxBodyGates - options.minBodyGates +
                      1));
    for (std::uint32_t i = 0; i < body; ++i)
        src += random_gate(rng.nextBool(options.borrowTouchProb)
                               ? "a"
                               : "");
    src += "release a;\n";
    const auto suffix = static_cast<std::uint32_t>(
        rng.nextBelow(options.maxSuffixGates + 1));
    for (std::uint32_t i = 0; i < suffix; ++i)
        src += random_gate("");
    return src;
}

std::string
mirrorMcxQbrSource(std::uint32_t m)
{
    if (m < 3)
        throw std::invalid_argument(
            format("mirrorMcxQbrSource requires m >= 3 (got %u)", m));
    std::string out = format("// mirror_mcx.qbr\nlet m = %u;\n", m);
    out += R"(borrow@ q[m]; // inputs: no assumptions, skip verification
borrow w; // dirty qubit, restored by the cell below

// compute: a CCNOT ladder over the inputs (scale knob)
for i = 1 to (m - 2) {
    CCNOT[q[i], q[i + 1], q[i + 2]];
}

// restore cell: w ^= (q1 & q2) ^ (q1 & ~q2) ^ q1 = 0
CCNOT[q[1], q[2], w];
X[q[2]];
CCNOT[q[1], q[2], w];
X[q[2]];
CNOT[q[1], w];

// uncompute: the ladder, mirrored
for i = (m - 2) to 1 {
    CCNOT[q[i], q[i + 1], q[i + 2]];
}

release w;
)";
    return out;
}

std::string
wideLinearMirrorQbrSource(std::uint32_t n)
{
    if (n < 4)
        throw std::invalid_argument(format(
            "wideLinearMirrorQbrSource requires n >= 4 (got %u)", n));
    std::string out =
        format("// wide_linear_mirror.qbr\nlet n = %u;\n", n);
    out += R"(borrow@ q[n]; // inputs: no assumptions, skip verification
borrow w; // dirty qubit: its cone spans all n+1 wires

// mixing: pull every input into the cone of w
for i = 1 to (n - 1) {
    CNOT[q[i], q[i + 1]];
}

// fold every mixed input into w ...
for i = 1 to n {
    CNOT[q[i], w];
}
X[w];

// ... and undo the fold in rotated order (not a textual mirror)
for i = 2 to n {
    CNOT[q[i], w];
}
CNOT[q[1], w];
X[w];

release w;
)";
    return out;
}

} // namespace qb::circuits
