#include "circuits/qbr_text.h"

#include <stdexcept>

#include "support/strings.h"

namespace qb::circuits {

std::string
adderQbrSource(std::uint32_t n)
{
    // Below n = 3 the loop bounds invert and the emitted text indexes
    // qubits that do not exist: reject here with the standard
    // bad-argument exception instead of handing a broken program to
    // the parser (whose error would point at generated text the user
    // never wrote).
    if (n < 3)
        throw std::invalid_argument(
            format("adderQbrSource requires n >= 3 (got %u)", n));
    std::string out = format("// adder.qbr\nlet n = %u;\n", n);
    out += R"(borrow@ q[n]; // inputs: no assumptions, skip verification
borrow a[n - 1]; // dirty qubits
CNOT[a[n - 1], q[n]];
for i = (n - 1) to 2 {
    CNOT[q[i], a[i]];
    X[q[i]];
    CCNOT[a[i - 1], q[i], a[i]];
}
CNOT[q[1], a[1]];
for i = 2 to (n - 1) {
    CCNOT[a[i - 1], q[i], a[i]];
}
CNOT[a[n - 1], q[n]];
X[q[n]];

// reverse the circuit to uncompute
for i = (n - 1) to 2 {
    CCNOT[a[i - 1], q[i], a[i]];
}
CNOT[q[1], a[1]];
for i = 2 to (n - 1) {
    CCNOT[a[i - 1], q[i], a[i]];
    X[q[i]];
    CNOT[q[i], a[i]];
}
)";
    return out;
}

std::string
mcxQbrSource(std::uint32_t m)
{
    if (m < 4)
        throw std::invalid_argument(
            format("mcxQbrSource requires m >= 4 (got %u)", m));
    std::string out = format("// mcx.qbr\nlet m = %u;\n", m);
    out += R"(let n = m + (m - 1); // n-controlled NOT gate

borrow@ q[n];
borrow@ t;

borrow anc;

// first part
CCNOT[q[n - 1], q[n], anc];
for i = (m - 2) to 2 {
    CCNOT[q[2 * i], q[2 * i + 1], q[2 * i + 2]];
}
CCNOT[q[1], q[3], q[4]];
for i = 2 to (m - 2) {
    CCNOT[q[2 * i], q[2 * i + 1], q[2 * i + 2]];
}
CCNOT[q[n - 1], q[n], anc];
for i = (m - 2) to 2 {
    CCNOT[q[2 * i], q[2 * i + 1], q[2 * i + 2]];
}
CCNOT[q[1], q[3], q[4]];
for i = 2 to (m - 2) {
    CCNOT[q[2 * i], q[2 * i + 1], q[2 * i + 2]];
}

// second part
CCNOT[q[n], anc, t];
for i = (m - 1) to 3 {
    CCNOT[q[2 * i - 1], q[2 * i], q[2 * i + 1]];
}
CCNOT[q[2], q[4], q[5]];
for i = 3 to (m - 1) {
    CCNOT[q[2 * i - 1], q[2 * i], q[2 * i + 1]];
}
CCNOT[q[n], anc, t];
for i = (m - 1) to 3 {
    CCNOT[q[2 * i - 1], q[2 * i], q[2 * i + 1]];
}
CCNOT[q[2], q[4], q[5]];
for i = 3 to (m - 1) {
    CCNOT[q[2 * i - 1], q[2 * i], q[2 * i + 1]];
}

// third part
CCNOT[q[n - 1], q[n], anc];
for i = (m - 2) to 2 {
    CCNOT[q[2 * i], q[2 * i + 1], q[2 * i + 2]];
}
CCNOT[q[1], q[3], q[4]];
for i = 2 to (m - 2) {
    CCNOT[q[2 * i], q[2 * i + 1], q[2 * i + 2]];
}
CCNOT[q[n - 1], q[n], anc];
for i = (m - 2) to 2 {
    CCNOT[q[2 * i], q[2 * i + 1], q[2 * i + 2]];
}
CCNOT[q[1], q[3], q[4]];
for i = 2 to (m - 2) {
    CCNOT[q[2 * i], q[2 * i + 1], q[2 * i + 2]];
}

// fourth part
CCNOT[q[n], anc, t];
for i = (m - 1) to 3 {
    CCNOT[q[2 * i - 1], q[2 * i], q[2 * i + 1]];
}
CCNOT[q[2], q[4], q[5]];
for i = 3 to (m - 1) {
    CCNOT[q[2 * i - 1], q[2 * i], q[2 * i + 1]];
}
CCNOT[q[n], anc, t];

release anc;

for i = (m - 1) to 3 {
    CCNOT[q[2 * i - 1], q[2 * i], q[2 * i + 1]];
}
CCNOT[q[2], q[4], q[5]];
for i = 3 to (m - 1) {
    CCNOT[q[2 * i - 1], q[2 * i], q[2 * i + 1]];
}
)";
    return out;
}

std::string
binaryHeavyMcxQbrSource(std::uint32_t m)
{
    // Reuse the real benchmark program and wrap the dirty wire in a
    // self-inverse dressing borrowed from the adder's carry motif:
    // CNOT; X; CCNOT mixes the dirty wire into the AND arguments of
    // the ladder, which is exactly what gives the Tseitin encoding
    // nested conjunction sharing - the shape whose binary implication
    // graph carries equivalence cycles and transitively redundant
    // edges.  The plain ladder's graph is a tree: SCC and transitive
    // reduction provably find nothing there.
    std::string out = mcxQbrSource(m);
    const std::string decl = "borrow anc;\n";
    const std::string dress = R"(
// binary-heavy dressing (adder carry motif on the dirty wire)
CNOT[q[2], anc];
X[q[2]];
CCNOT[q[1], q[2], anc];
)";
    const std::string rel = "release anc;";
    const std::string undress =
        R"(// undo the dressing before the wire is released
CCNOT[q[1], q[2], anc];
X[q[2]];
CNOT[q[2], anc];

release anc;)";
    out.replace(out.find(decl), decl.size(), decl + dress);
    out.replace(out.find(rel), rel.size(), undress);
    return out;
}

std::string
mirrorMcxQbrSource(std::uint32_t m)
{
    if (m < 3)
        throw std::invalid_argument(
            format("mirrorMcxQbrSource requires m >= 3 (got %u)", m));
    std::string out = format("// mirror_mcx.qbr\nlet m = %u;\n", m);
    out += R"(borrow@ q[m]; // inputs: no assumptions, skip verification
borrow w; // dirty qubit, restored by the cell below

// compute: a CCNOT ladder over the inputs (scale knob)
for i = 1 to (m - 2) {
    CCNOT[q[i], q[i + 1], q[i + 2]];
}

// restore cell: w ^= (q1 & q2) ^ (q1 & ~q2) ^ q1 = 0
CCNOT[q[1], q[2], w];
X[q[2]];
CCNOT[q[1], q[2], w];
X[q[2]];
CNOT[q[1], w];

// uncompute: the ladder, mirrored
for i = (m - 2) to 1 {
    CCNOT[q[i], q[i + 1], q[i + 2]];
}

release w;
)";
    return out;
}

} // namespace qb::circuits
