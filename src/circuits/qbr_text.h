/**
 * @file
 * QBorrow source-text generators for the paper's two benchmark
 * programs (Sections 6.2 and 10.4).
 *
 * The emitted text matches the artifact listings (adder.qbr, mcx.qbr)
 * up to the leading `let` parameter, so the benchmarks exercise the
 * complete parse -> elaborate -> verify pipeline exactly as the
 * paper's tool does.
 */

#ifndef QB_CIRCUITS_QBR_TEXT_H
#define QB_CIRCUITS_QBR_TEXT_H

#include <cstdint>
#include <string>

#include "support/rng.h"

namespace qb::circuits {

/**
 * adder.qbr with `let n = <n>`.
 * @throws std::invalid_argument when n < 3 (the program is
 *         ill-formed below that).
 */
std::string adderQbrSource(std::uint32_t n);

/**
 * mcx.qbr with `let m = <m>`.
 * @throws std::invalid_argument when m < 4 (the program is
 *         ill-formed below that).
 */
std::string mcxQbrSource(std::uint32_t m);

/**
 * mcx.qbr wrapped in a self-inverse CNOT/X/CCNOT dressing of the
 * dirty wire (the adder's carry motif).  Verdicts are identical to
 * mcxQbrSource(m) - the dressing undoes itself - but the Tseitin
 * encoding of the dressed conditions gains nested, argument-sharing
 * conjunctions, so its binary implication graph carries equivalence
 * cycles and transitively redundant edges: the shapes the
 * binary-graph inprocessing passes exist for.  The bench-smoke CI
 * step asserts nonzero scc_merged_vars/transitive_reduced on this
 * program.
 * @throws std::invalid_argument when m < 4 (see mcxQbrSource()).
 */
std::string binaryHeavyMcxQbrSource(std::uint32_t m);

/**
 * Mirrored-construction benchmark program: a CCNOT ladder over m
 * skip-verified inputs, undone gate-for-gate, around a restore cell
 * on the one dirty qubit.
 *
 * The cell applies `(a AND b) XOR (a AND NOT b) XOR a = 0` to the
 * dirty wire - an identity the formula arena cannot constant-fold
 * (it has no distributivity rule), so condition (6.1) reaches the
 * static analyzer as a non-constant formula and is discharged by the
 * permutation pass over a 3-wire cone, independent of m.  Exact
 * textual mirrors are useless for this purpose: XOR flattening and
 * hash-consing fold them to a constant before any solver or analyzer
 * ever runs.
 *
 * @throws std::invalid_argument when m < 3 (the ladder needs three
 *         wires).
 */
std::string mirrorMcxQbrSource(std::uint32_t m);

/**
 * Wide-linear-mirror benchmark program: the dirty qubit's restore
 * cone spans ALL n+1 wires, so the windowed permutation pass answers
 * TooWide at any n past the window - only the GF(2)-affine dataflow
 * pass (dataflow.h), which has no width bound, discharges it
 * statically.
 *
 * Shape: a triangular CNOT mixing pass over n skip-verified inputs
 * (pulling every input into the cone), the dirty qubit w folded with
 * every mixed input, an X, the fold undone in a ROTATED gate order
 * (defeating the mirror pass's suffix scan; the formula arena would
 * fold an exact textual mirror by itself), and the X undone.  Every
 * gate is linear, so the affine pass proves both conditions of
 * Theorem 6.4 UNSAT - and, because it is consulted BEFORE formula
 * construction, the engine also skips the O(wires x circuit) (6.2)
 * cofactor build that dominates at large n.  With `--analysis off`
 * the program still verifies (the arena folds the built conditions),
 * so verdicts are bit-identical either way.
 *
 * @throws std::invalid_argument when n < 4 (the mixing pass needs
 *         enough wires to be meaningful).
 */
std::string wideLinearMirrorQbrSource(std::uint32_t n);

/**
 * Knobs for randomQbrSource().  The defaults reproduce the
 * distribution the random-pipeline property tests have always used:
 * 3-5 skip-verified inputs, a 0-2 gate prefix, one verified borrow
 * with a 2-7 gate body that touches the borrowed wire 60% of the
 * time, and a 0-2 gate suffix, gate kinds drawn uniformly.  The fuzz
 * harness (support/fuzz.h) raises cnotWeight to push the generated
 * programs into the binary-implication-heavy region the solver's
 * graph passes (SCC, probing, transitive reduction) exist for.
 */
struct RandomQbrOptions
{
    std::uint32_t minQubits = 3;     ///< skip-verified input wires, low
    std::uint32_t maxQubits = 5;     ///< skip-verified input wires, high
    std::uint32_t maxPrefixGates = 2;
    std::uint32_t minBodyGates = 2;
    std::uint32_t maxBodyGates = 7;
    std::uint32_t maxSuffixGates = 2;
    /** Probability a body gate's operand set includes the borrow. */
    double borrowTouchProb = 0.6;
    /** @name Relative gate-kind weights (need not sum to 1). @{ */
    double xWeight = 1.0;
    double cnotWeight = 1.0;
    double ccnotWeight = 1.0;
    /** @} */
};

/**
 * Random QBorrow source with one verified `borrow a` block between a
 * gate prefix and suffix over skip-verified inputs.  Every emitted
 * program parses and elaborates; whether the borrow safely
 * uncomputes is up to chance - which is the point: the text feeds
 * the full parse -> elaborate -> verify pipeline in the property
 * tests and the differential fuzz harness, with verdicts
 * cross-checked against brute force.  Deterministic in @p rng: the
 * same seed and options yield byte-identical text on every platform.
 */
std::string randomQbrSource(Rng &rng,
                            const RandomQbrOptions &options = {});

} // namespace qb::circuits

#endif // QB_CIRCUITS_QBR_TEXT_H
