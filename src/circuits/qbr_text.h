/**
 * @file
 * QBorrow source-text generators for the paper's two benchmark
 * programs (Sections 6.2 and 10.4).
 *
 * The emitted text matches the artifact listings (adder.qbr, mcx.qbr)
 * up to the leading `let` parameter, so the benchmarks exercise the
 * complete parse -> elaborate -> verify pipeline exactly as the
 * paper's tool does.
 */

#ifndef QB_CIRCUITS_QBR_TEXT_H
#define QB_CIRCUITS_QBR_TEXT_H

#include <cstdint>
#include <string>

namespace qb::circuits {

/**
 * adder.qbr with `let n = <n>`.
 * @throws std::invalid_argument when n < 3 (the program is
 *         ill-formed below that).
 */
std::string adderQbrSource(std::uint32_t n);

/**
 * mcx.qbr with `let m = <m>`.
 * @throws std::invalid_argument when m < 4 (the program is
 *         ill-formed below that).
 */
std::string mcxQbrSource(std::uint32_t m);

} // namespace qb::circuits

#endif // QB_CIRCUITS_QBR_TEXT_H
