#include "circuits/mcx.h"

#include "support/logging.h"
#include "support/strings.h"

namespace qb::circuits {

using ir::Circuit;
using ir::Gate;
using ir::QubitId;

std::uint32_t
gidneyMcxTarget(std::uint32_t m)
{
    return 2 * m - 1; // after the n = 2m-1 controls
}

std::uint32_t
gidneyMcxAncilla(std::uint32_t m)
{
    return 2 * m; // after the target
}

ir::Circuit
gidneyMcx(std::uint32_t m)
{
    qbAssert(m >= 4, "gidneyMcx requires m >= 4");
    const std::uint32_t n = 2 * m - 1;
    Circuit circuit(n + 2, format("gidney-mcx(m=%u)", m));
    for (std::uint32_t i = 1; i <= n; ++i)
        circuit.setLabel(i - 1, format("q[%u]", i));
    circuit.setLabel(n, "t");
    circuit.setLabel(n + 1, "anc");
    auto q = [](std::uint32_t i) { return i - 1; };
    const QubitId t = n;
    const QubitId anc = n + 1;

    // "First part" of mcx.qbr: the odd-position ladder conjugating the
    // Toffoli onto the dirty ancilla; appears twice per half.
    auto odd_part = [&]() {
        for (int rep = 0; rep < 2; ++rep) {
            circuit.append(Gate::ccnot(q(n - 1), q(n), anc));
            for (std::uint32_t i = m - 2; i >= 2; --i)
                circuit.append(Gate::ccnot(q(2 * i), q(2 * i + 1),
                                           q(2 * i + 2)));
            circuit.append(Gate::ccnot(q(1), q(3), q(4)));
            for (std::uint32_t i = 2; i <= m - 2; ++i)
                circuit.append(Gate::ccnot(q(2 * i), q(2 * i + 1),
                                           q(2 * i + 2)));
        }
    };
    // "Second part": the even-position ladder targeting t.
    auto even_part = [&]() {
        for (int rep = 0; rep < 2; ++rep) {
            circuit.append(Gate::ccnot(q(n), anc, t));
            for (std::uint32_t i = m - 1; i >= 3; --i)
                circuit.append(Gate::ccnot(q(2 * i - 1), q(2 * i),
                                           q(2 * i + 1)));
            circuit.append(Gate::ccnot(q(2), q(4), q(5)));
            for (std::uint32_t i = 3; i <= m - 1; ++i)
                circuit.append(Gate::ccnot(q(2 * i - 1), q(2 * i),
                                           q(2 * i + 1)));
        }
    };

    odd_part();  // part 1
    even_part(); // part 2
    odd_part();  // part 3
    even_part(); // part 4 (anc is released after its second Toffoli)
    return circuit;
}

std::size_t
gidneyMcxAncillaRelease(std::uint32_t m)
{
    const Circuit circuit = gidneyMcx(m);
    const auto interval =
        circuit.busyInterval(gidneyMcxAncilla(m));
    qbAssert(interval.has_value(), "ancilla is never used");
    return interval->second + 1;
}

ir::Circuit
barencoMcx(std::uint32_t m)
{
    qbAssert(m >= 3, "barencoMcx requires m >= 3 controls");
    // Controls [0, m), target m, dirty ancillas [m+1, m+1 + (m-2)).
    Circuit circuit(2 * m - 1, format("barenco-mcx(m=%u)", m));
    for (std::uint32_t i = 0; i < m; ++i)
        circuit.setLabel(i, format("x[%u]", i + 1));
    circuit.setLabel(m, "y");
    for (std::uint32_t i = 0; i + 2 < m; ++i)
        circuit.setLabel(m + 1 + i, format("w[%u]", i + 1));
    auto x = [](std::uint32_t i) { return i - 1; };     // 1-based
    auto a = [m](std::uint32_t i) { return m + i; };    // 1-based
    const QubitId y = m;

    // Lemma 7.2 V-chain, applied twice; 4(m-2) Toffolis total.
    for (int rep = 0; rep < 2; ++rep) {
        circuit.append(Gate::ccnot(x(m), a(m - 2), y));
        for (std::uint32_t i = m - 2; i >= 2; --i)
            circuit.append(Gate::ccnot(x(i + 1), a(i - 1), a(i)));
        circuit.append(Gate::ccnot(x(1), x(2), a(1)));
        for (std::uint32_t i = 2; i <= m - 2; ++i)
            circuit.append(Gate::ccnot(x(i + 1), a(i - 1), a(i)));
    }
    return circuit;
}

} // namespace qb::circuits
