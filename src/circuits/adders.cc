#include "circuits/adders.h"

#include <numbers>

#include "support/logging.h"
#include "support/strings.h"

namespace qb::circuits {

using ir::Circuit;
using ir::Gate;
using ir::QubitId;

namespace {

/** X-load the bits of @p c into qubits [base, base + n). */
void
loadConstant(Circuit &circuit, QubitId base, std::uint32_t n,
             std::uint64_t c)
{
    for (std::uint32_t i = 0; i < n; ++i)
        if ((c >> i) & 1)
            circuit.append(Gate::x(base + i));
}

void
labelRegister(Circuit &circuit, QubitId base, std::uint32_t n,
              const char *name)
{
    for (std::uint32_t i = 0; i < n; ++i)
        circuit.setLabel(base + i, format("%s[%u]", name, i));
}

} // namespace

ir::Circuit
cuccaroConstantAdder(std::uint32_t n, std::uint64_t c)
{
    qbAssert(n >= 1 && n <= 63, "cuccaro adder size out of range");
    Circuit circuit(2 * n + 1, format("cuccaro-add(n=%u)", n));
    labelRegister(circuit, 0, n, "x");
    labelRegister(circuit, n, n, "a");
    circuit.setLabel(2 * n, "c0");
    const QubitId carry = 2 * n;
    auto a = [n](std::uint32_t i) { return n + i; };
    auto b = [](std::uint32_t i) { return i; };

    loadConstant(circuit, n, n, c);

    // MAJ(c_in, b_i, a_i): after it, a_i holds the majority (the
    // ripple carry) and b_i holds a_i XOR b_i.
    auto maj = [&](QubitId x, QubitId y, QubitId z) {
        circuit.append(Gate::cnot(z, y));
        circuit.append(Gate::cnot(z, x));
        circuit.append(Gate::ccnot(x, y, z));
    };
    // UMA: undo MAJ and write the sum bit into b_i.
    auto uma = [&](QubitId x, QubitId y, QubitId z) {
        circuit.append(Gate::ccnot(x, y, z));
        circuit.append(Gate::cnot(z, x));
        circuit.append(Gate::cnot(x, y));
    };

    maj(carry, b(0), a(0));
    for (std::uint32_t i = 1; i < n; ++i)
        maj(a(i - 1), b(i), a(i));
    // Modular 2^n addition: the final carry in a(n-1) is not copied
    // out; the UMA ladder undoes it.
    for (std::uint32_t i = n; i-- > 1;)
        uma(a(i - 1), b(i), a(i));
    uma(carry, b(0), a(0));

    loadConstant(circuit, n, n, c);
    return circuit;
}

ir::Circuit
takahashiConstantAdder(std::uint32_t n, std::uint64_t c)
{
    qbAssert(n >= 2 && n <= 63, "takahashi adder size out of range");
    Circuit circuit(2 * n, format("takahashi-add(n=%u)", n));
    labelRegister(circuit, 0, n, "x");
    labelRegister(circuit, n, n, "a");
    auto a = [n](std::uint32_t i) { return n + i; };
    auto b = [](std::uint32_t i) { return i; };

    loadConstant(circuit, n, n, c);

    // Takahashi-Tani-Kunihiro ripple adder without a carry ancilla:
    // (a, b) -> (a, a + b mod 2^n), b = x LSB-first.
    for (std::uint32_t i = 1; i < n; ++i)
        circuit.append(Gate::cnot(a(i), b(i)));
    for (std::uint32_t i = n - 1; i-- > 1;)
        circuit.append(Gate::cnot(a(i), a(i + 1)));
    for (std::uint32_t i = 0; i + 1 < n; ++i)
        circuit.append(Gate::ccnot(a(i), b(i), a(i + 1)));
    for (std::uint32_t i = n - 1; i >= 1; --i) {
        circuit.append(Gate::cnot(a(i), b(i)));
        circuit.append(Gate::ccnot(a(i - 1), b(i - 1), a(i)));
    }
    for (std::uint32_t i = 1; i + 1 < n; ++i)
        circuit.append(Gate::cnot(a(i), a(i + 1)));
    for (std::uint32_t i = 0; i < n; ++i)
        circuit.append(Gate::cnot(a(i), b(i)));

    loadConstant(circuit, n, n, c);
    return circuit;
}

ir::Circuit
draperConstantAdder(std::uint32_t n, std::uint64_t c)
{
    qbAssert(n >= 1 && n <= 63, "draper adder size out of range");
    Circuit circuit(n, format("draper-add(n=%u)", n));
    labelRegister(circuit, 0, n, "x");
    const double two_pi = 2.0 * std::numbers::pi;
    const double modulus = static_cast<double>(std::uint64_t{1} << n);

    // QFT (no terminal swaps; the phase stage below is written in the
    // matching bit order, so the swaps cancel).
    for (std::uint32_t j = n; j-- > 0;) {
        circuit.append(Gate::h(j));
        for (std::uint32_t k = j; k-- > 0;) {
            const double angle =
                std::numbers::pi / static_cast<double>(
                    std::uint64_t{1} << (j - k));
            circuit.append(Gate::cphase(k, j, angle));
        }
    }
    // Fourier-space addition of the constant.  Without the terminal
    // swaps, qubit j of the no-swap QFT carries the output bit of
    // weight 2^(n-1-j), so the phase weights are bit-reversed.
    for (std::uint32_t j = 0; j < n; ++j) {
        const double angle = two_pi *
            static_cast<double>(c % (std::uint64_t{1} << n)) *
            static_cast<double>(std::uint64_t{1} << (n - 1 - j)) /
            modulus;
        circuit.append(Gate::phase(j, angle));
    }
    // Inverse QFT.
    for (std::uint32_t j = 0; j < n; ++j) {
        for (std::uint32_t k = 0; k < j; ++k) {
            const double angle =
                -std::numbers::pi / static_cast<double>(
                    std::uint64_t{1} << (j - k));
            circuit.append(Gate::cphase(k, j, angle));
        }
        circuit.append(Gate::h(j));
    }
    return circuit;
}

ir::Circuit
hanerCarryCircuit(std::uint32_t n)
{
    qbAssert(n >= 3, "hanerCarryCircuit requires n >= 3");
    Circuit circuit(2 * n - 1, format("haner-carry(n=%u)", n));
    // 1-based registers, matching adder.qbr: q[i] = i-1, a[i] = n+i-1.
    for (std::uint32_t i = 1; i <= n; ++i)
        circuit.setLabel(i - 1, format("q[%u]", i));
    for (std::uint32_t i = 1; i <= n - 1; ++i)
        circuit.setLabel(n + i - 1, format("a[%u]", i));
    auto q = [](std::uint32_t i) { return i - 1; };
    auto a = [n](std::uint32_t i) { return n + i - 1; };

    circuit.append(Gate::cnot(a(n - 1), q(n)));
    for (std::uint32_t i = n - 1; i >= 2; --i) {
        circuit.append(Gate::cnot(q(i), a(i)));
        circuit.append(Gate::x(q(i)));
        circuit.append(Gate::ccnot(a(i - 1), q(i), a(i)));
    }
    circuit.append(Gate::cnot(q(1), a(1)));
    for (std::uint32_t i = 2; i <= n - 1; ++i)
        circuit.append(Gate::ccnot(a(i - 1), q(i), a(i)));
    circuit.append(Gate::cnot(a(n - 1), q(n)));
    circuit.append(Gate::x(q(n)));

    // Reverse the carry computation to uncompute the dirty ancillas.
    for (std::uint32_t i = n - 1; i >= 2; --i)
        circuit.append(Gate::ccnot(a(i - 1), q(i), a(i)));
    circuit.append(Gate::cnot(q(1), a(1)));
    for (std::uint32_t i = 2; i <= n - 1; ++i) {
        circuit.append(Gate::ccnot(a(i - 1), q(i), a(i)));
        circuit.append(Gate::x(q(i)));
        circuit.append(Gate::cnot(q(i), a(i)));
    }
    return circuit;
}

} // namespace qb::circuits
