/**
 * @file
 * The adder circuit family behind Figure 1.1 and the paper's adder
 * benchmark (Figure 10.1 / adder.qbr).
 *
 * Qubit layout conventions: each generator documents its own layout;
 * data registers are LSB-first (x[0] is the least significant bit)
 * unless stated otherwise.  All generators return plain IR circuits so
 * they can be fed to the simulators, the verifier and the cost bench.
 */

#ifndef QB_CIRCUITS_ADDERS_H
#define QB_CIRCUITS_ADDERS_H

#include <cstdint>

#include "ir/circuit.h"

namespace qb::circuits {

/**
 * Cuccaro (CDKM) ripple-carry constant adder: |x> -> |x + c mod 2^n>.
 *
 * Layout: qubits [0, n) = x (LSB first), [n, 2n) = a clean register
 * loaded with the constant, qubit 2n = the clean incoming-carry
 * ancilla.  Total n+1 clean ancillas, Theta(n) size and depth -
 * the first column of Figure 1.1.
 */
ir::Circuit cuccaroConstantAdder(std::uint32_t n, std::uint64_t c);

/**
 * Takahashi-Tani-Kunihiro constant adder: |x> -> |x + c mod 2^n>.
 *
 * Layout: qubits [0, n) = x (LSB first), [n, 2n) = the clean register
 * holding the constant.  No carry ancilla: n clean ancillas total,
 * Theta(n) size and depth - the second column of Figure 1.1.
 */
ir::Circuit takahashiConstantAdder(std::uint32_t n, std::uint64_t c);

/**
 * Draper QFT constant adder: |x> -> |x + c mod 2^n>.
 *
 * Layout: qubits [0, n) = x (LSB first).  Zero ancillas, Theta(n^2)
 * gates (from the QFT's controlled rotations), Theta(n) depth - the
 * third column of Figure 1.1.  Not a classical circuit.
 */
ir::Circuit draperConstantAdder(std::uint32_t n, std::uint64_t c);

/**
 * The paper's Haner-style carry circuit (Figure 10.1 / adder.qbr):
 * computes the most significant bit of (s_1..s_n)_2 + (11..1)_2 into
 * q[n], restoring the n-1 dirty ancillas a[1..n-1] and the inputs
 * q[1..n-1].
 *
 * Layout matches the QBorrow program: qubits [0, n) = q[1..n] (the
 * program's 1-based register, MSB-last), [n, 2n-1) = a[1..n-1].
 * Requires n >= 3.
 *
 * Note: this is the paper's own instantiation of Haner et al.'s
 * dirty-qubit technique (the carry computation); the full Theta(n log n)
 * recursive constant adder of Haner et al. is represented by this
 * circuit in the Figure 1.1 cost bench, as documented in
 * EXPERIMENTS.md.
 */
ir::Circuit hanerCarryCircuit(std::uint32_t n);

} // namespace qb::circuits

#endif // QB_CIRCUITS_ADDERS_H
