/**
 * @file
 * Multi-controlled NOT constructions with dirty qubits.
 *
 * gidneyMcx() follows the paper's mcx.qbr benchmark (Section 10.4),
 * which implements a (2m-1)-controlled NOT with a single borrowed
 * dirty ancilla and 16(m-2) Toffoli gates, adapted from Gidney's
 * "Constructing Large Controlled Nots".
 *
 * barencoMcx() is the classic Barenco et al. decomposition of an
 * m-controlled NOT into 4(m-2) Toffolis using m-2 dirty ancillas,
 * provided as an additional library routine and test workload.
 */

#ifndef QB_CIRCUITS_MCX_H
#define QB_CIRCUITS_MCX_H

#include <cstdint>

#include "ir/circuit.h"

namespace qb::circuits {

/**
 * The paper's MCX benchmark circuit for parameter m >= 4.
 *
 * Layout (matching mcx.qbr): controls q[1..n] = qubits [0, n) with
 * n = 2m-1, target t = qubit n, dirty ancilla anc = qubit n+1.
 * Implements MCX[q[1..n] -> t] while safely uncomputing anc.
 */
ir::Circuit gidneyMcx(std::uint32_t m);

/** Id of the target qubit t in gidneyMcx(m). */
std::uint32_t gidneyMcxTarget(std::uint32_t m);
/** Id of the dirty ancilla anc in gidneyMcx(m). */
std::uint32_t gidneyMcxAncilla(std::uint32_t m);
/** Gate index at which anc's lifetime ends (its release point). */
std::size_t gidneyMcxAncillaRelease(std::uint32_t m);

/**
 * Barenco et al. V-chain: MCX with @p m controls (m >= 3) using m-2
 * dirty ancillas and 4(m-2) Toffolis.
 *
 * Layout: controls = [0, m), target = m, dirty ancillas =
 * [m+1, 2m-1).
 */
ir::Circuit barencoMcx(std::uint32_t m);

} // namespace qb::circuits

#endif // QB_CIRCUITS_MCX_H
