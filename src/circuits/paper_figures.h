/**
 * @file
 * The small illustrative circuits and programs from the paper's
 * figures, used by tests, examples and the width-reduction demo.
 */

#ifndef QB_CIRCUITS_PAPER_FIGURES_H
#define QB_CIRCUITS_PAPER_FIGURES_H

#include <string>

#include "ir/circuit.h"

namespace qb::circuits {

/**
 * Figure 1.3: three-controlled NOT from four Toffolis and one dirty
 * qubit.  Qubit order matches the figure: q1, q2, a, q3, q4 (ids
 * 0..4); the circuit implements CCCNOT[q1,q2,q3 -> q4] while safely
 * uncomputing the dirty qubit a (id 2).
 */
ir::Circuit cccnotDirty();

/** Id of the dirty qubit a in cccnotDirty(). */
constexpr ir::QubitId kCccnotDirtyQubit = 2;

/**
 * A minimal counterexample in the spirit of Figure 1.4: a circuit that
 * restores the would-be dirty qubit a (id 0) on every computational
 * basis state - hence "safe" under the naive clean-qubit criterion -
 * but fails to restore the superposition |+>, because another qubit's
 * output depends on a.  Here: a single CNOT[a, b].
 */
ir::Circuit fig14Counterexample();

/**
 * Figure 3.1a / Figure 4.4: the seven-qubit circuit with two instances
 * of the Figure 1.3 routine and two dirty qubits a1, a2.  Qubit ids:
 * q1..q5 = 0..4, a1 = 5, a2 = 6.
 */
ir::Circuit fig31Circuit();

/** Dirty-qubit ids of fig31Circuit(). */
constexpr ir::QubitId kFig31DirtyA1 = 5;
constexpr ir::QubitId kFig31DirtyA2 = 6;

/**
 * Figure 3.1c: the same functionality after borrowing working qubit
 * q3 (id 2) as both a1 and a2 - five qubits, no ancillas.
 */
ir::Circuit fig31Optimized();

/**
 * The Figure 4.4 program as QBorrow source text (with explicit
 * working-qubit declarations, which the figure leaves implicit).
 */
std::string fig44Source();

/**
 * Example 5.2: S = X[q]; borrow a; X[q]; X[a]; release a.  The borrow
 * of a is unsafe, yet q is safely uncomputed by S.
 */
std::string example52Source();

} // namespace qb::circuits

#endif // QB_CIRCUITS_PAPER_FIGURES_H
