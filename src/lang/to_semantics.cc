#include "lang/to_semantics.h"

#include <optional>
#include <span>
#include <unordered_map>

#include "lang/parser.h"
#include "support/logging.h"
#include "support/strings.h"

namespace qb::lang {

namespace {

/** A register is either concrete qubits or a borrow placeholder. */
struct SemRegister
{
    bool isPlaceholder = false;
    std::string placeholder; // unique instance name
    ir::QubitId base = 0;
    std::int64_t size = 1;
    bool isArray = false;
    bool released = false;
};

class Lowering
{
  public:
    SemanticsProgram
    run(const Program &program)
    {
        SemanticsProgram out;
        out.stmt = lowerBlock(program.statements);
        out.numQubits = static_cast<std::uint32_t>(nextQubit);
        out.labels = std::move(labels);
        return out;
    }

  private:
    [[noreturn]] static void
    fail(const SourceLoc &loc, const std::string &msg)
    {
        fatal(loc.toString() + ": " + msg);
    }

    std::int64_t
    eval(const Expr &e)
    {
        struct Visitor
        {
            Lowering &lo;
            const Expr &expr;

            std::int64_t operator()(const NumExpr &n) const
            {
                return n.value;
            }
            std::int64_t
            operator()(const IdentExpr &id) const
            {
                auto it = lo.consts.find(id.name);
                if (it == lo.consts.end())
                    fail(expr.loc,
                         "undefined constant '" + id.name + "'");
                return it->second;
            }
            std::int64_t
            operator()(const BinaryExpr &b) const
            {
                const std::int64_t l = lo.eval(*b.lhs);
                const std::int64_t r = lo.eval(*b.rhs);
                switch (b.op) {
                  case '+': return l + r;
                  case '-': return l - r;
                  default:  return l * r;
                }
            }
            std::int64_t
            operator()(const UnaryExpr &u) const
            {
                const std::int64_t v = lo.eval(*u.operand);
                return u.op == '-' ? -v : v;
            }
        };
        return std::visit(Visitor{*this, e}, e.node);
    }

    sem::Operand
    resolve(const RegRef &reg)
    {
        auto it = registers.find(reg.name);
        if (it == registers.end())
            fail(reg.loc, "unknown register '" + reg.name + "'");
        SemRegister &r = it->second;
        if (r.released)
            fail(reg.loc, "register '" + reg.name +
                          "' was already released");
        if (r.isPlaceholder) {
            if (reg.index)
                fail(reg.loc, "borrowed placeholder '" + reg.name +
                              "' cannot be indexed");
            return sem::Operand::ph(r.placeholder);
        }
        std::int64_t idx = 1;
        if (reg.index) {
            if (!r.isArray)
                fail(reg.loc, "register '" + reg.name +
                              "' is a scalar and cannot be indexed");
            idx = eval(*reg.index);
            if (idx < 1 || idx > r.size)
                fail(reg.loc,
                     format("index %lld out of range for '%s'",
                            static_cast<long long>(idx),
                            reg.name.c_str()));
        } else if (r.isArray) {
            fail(reg.loc, "register '" + reg.name +
                          "' is an array; an index is required");
        }
        return sem::Operand::q(
            r.base + static_cast<ir::QubitId>(idx - 1));
    }

    /**
     * Declare a concrete register (borrow@ or alloc); returns the
     * init statements for alloc registers.
     */
    std::vector<sem::StmtPtr>
    declareConcrete(const RegRef &reg, bool is_alloc)
    {
        checkNameFree(reg);
        std::int64_t size = 1;
        if (reg.index) {
            size = eval(*reg.index);
            if (size < 1)
                fail(reg.loc, "register size must be positive");
        }
        SemRegister r;
        r.base = static_cast<ir::QubitId>(nextQubit);
        r.size = size;
        r.isArray = reg.index != nullptr;
        registers[reg.name] = r;
        std::vector<sem::StmtPtr> inits;
        for (std::int64_t i = 0; i < size; ++i) {
            const auto id =
                static_cast<ir::QubitId>(nextQubit + i);
            labels[id] = reg.index
                ? format("%s[%lld]", reg.name.c_str(),
                         static_cast<long long>(i + 1))
                : reg.name;
            if (is_alloc)
                inits.push_back(sem::init(sem::Operand::q(id)));
        }
        nextQubit += static_cast<std::size_t>(size);
        return inits;
    }

    void
    checkNameFree(const RegRef &reg)
    {
        auto it = registers.find(reg.name);
        if (it != registers.end() && !it->second.released)
            fail(reg.loc, "register '" + reg.name +
                          "' is already in scope");
        if (consts.count(reg.name))
            fail(reg.loc,
                 "'" + reg.name + "' already names a constant");
    }

    /** Lower statements [begin, end) of @p stmts. */
    sem::StmtPtr
    lowerBlock(std::span<const Stmt> stmts)
    {
        std::vector<sem::StmtPtr> parts;
        for (std::size_t i = 0; i < stmts.size(); ++i)
            i = lowerStmt(stmts, i, parts);
        return sem::seqAll(std::move(parts));
    }

    /**
     * Lower the statement at @p i, appending to @p parts; returns the
     * index of the last statement consumed (borrow consumes through
     * its matching release).
     */
    std::size_t
    lowerStmt(std::span<const Stmt> stmts, std::size_t i,
              std::vector<sem::StmtPtr> &parts)
    {
        const Stmt &stmt = stmts[i];
        struct Visitor
        {
            Lowering &lo;
            std::span<const Stmt> stmts;
            std::size_t i;
            std::vector<sem::StmtPtr> &parts;
            const Stmt &stmt;

            std::size_t
            operator()(const LetStmt &s) const
            {
                if (lo.registers.count(s.name) &&
                    !lo.registers[s.name].released)
                    fail(stmt.loc, "'" + s.name +
                                   "' already names a register");
                lo.consts[s.name] = lo.eval(*s.value);
                return i;
            }
            std::size_t
            operator()(const BorrowStmt &s) const
            {
                if (s.skipVerify) {
                    // borrow@: concrete arbitrary-state qubits.
                    lo.declareConcrete(s.reg, false);
                    return i;
                }
                if (s.reg.index)
                    fail(stmt.loc,
                         "the semantics backend borrows single "
                         "qubits; arrays require borrow@");
                lo.checkNameFree(s.reg);
                // Find the matching release in this block.
                std::size_t release_at = stmts.size();
                for (std::size_t j = i + 1; j < stmts.size(); ++j) {
                    const auto *rel =
                        std::get_if<ReleaseStmt>(&stmts[j].node);
                    if (rel && rel->name == s.reg.name) {
                        release_at = j;
                        break;
                    }
                }
                const std::string unique = format(
                    "%s#%zu", s.reg.name.c_str(),
                    lo.placeholderCounter++);
                SemRegister r;
                r.isPlaceholder = true;
                r.placeholder = unique;
                lo.registers[s.reg.name] = r;
                const sem::StmtPtr body = lo.lowerBlock(
                    stmts.subspan(i + 1, release_at - i - 1));
                lo.registers[s.reg.name].released = true;
                parts.push_back(sem::borrow(unique, body));
                return release_at == stmts.size()
                           ? release_at - 1
                           : release_at;
            }
            std::size_t
            operator()(const AllocStmt &s) const
            {
                auto inits = lo.declareConcrete(s.reg, true);
                for (auto &init_stmt : inits)
                    parts.push_back(std::move(init_stmt));
                return i;
            }
            std::size_t
            operator()(const ReleaseStmt &s) const
            {
                auto it = lo.registers.find(s.name);
                if (it == lo.registers.end())
                    fail(stmt.loc,
                         "unknown register '" + s.name + "'");
                if (it->second.released)
                    fail(stmt.loc, "register '" + s.name +
                                   "' was already released");
                if (it->second.isPlaceholder)
                    fail(stmt.loc,
                         "release of '" + s.name +
                         "' does not match a borrow in the same "
                         "block");
                it->second.released = true;
                return i;
            }
            std::size_t
            operator()(const GateStmt &s) const
            {
                std::vector<sem::Operand> ops;
                ops.reserve(s.args.size());
                for (const RegRef &arg : s.args)
                    ops.push_back(lo.resolve(arg));
                for (std::size_t a = 0; a < ops.size(); ++a)
                    for (std::size_t b = a + 1; b < ops.size(); ++b)
                        if (ops[a] == ops[b])
                            fail(stmt.loc, "gate operands must be "
                                           "distinct qubits");
                ir::GateKind kind = ir::GateKind::X;
                switch (s.kind) {
                  case GateStmt::Kind::X:
                    kind = ir::GateKind::X;
                    break;
                  case GateStmt::Kind::Cnot:
                    kind = ir::GateKind::CNOT;
                    break;
                  case GateStmt::Kind::Ccnot:
                    kind = ir::GateKind::CCNOT;
                    break;
                  case GateStmt::Kind::Mcx:
                    if (ops.size() == 2) {
                        kind = ir::GateKind::CNOT;
                    } else if (ops.size() == 3) {
                        kind = ir::GateKind::CCNOT;
                    } else {
                        fail(stmt.loc,
                             "the semantics backend supports MCX "
                             "with at most two controls");
                    }
                    break;
                  case GateStmt::Kind::H:
                    kind = ir::GateKind::H;
                    break;
                  case GateStmt::Kind::S:
                    kind = ir::GateKind::S;
                    break;
                  case GateStmt::Kind::Z:
                    kind = ir::GateKind::Z;
                    break;
                  case GateStmt::Kind::Swap:
                    kind = ir::GateKind::Swap;
                    break;
                }
                parts.push_back(sem::unitary(kind, std::move(ops)));
                return i;
            }
            std::size_t
            operator()(const ForStmt &s) const
            {
                const std::int64_t from = lo.eval(*s.from);
                const std::int64_t to = lo.eval(*s.to);
                const std::int64_t step = from <= to ? 1 : -1;
                std::optional<std::int64_t> saved;
                auto prev = lo.consts.find(s.var);
                if (prev != lo.consts.end())
                    saved = prev->second;
                for (std::int64_t v = from;; v += step) {
                    lo.consts[s.var] = v;
                    parts.push_back(lo.lowerBlock(s.body));
                    if (v == to)
                        break;
                }
                if (saved)
                    lo.consts[s.var] = *saved;
                else
                    lo.consts.erase(s.var);
                return i;
            }
            std::size_t
            operator()(const IfStmt &s) const
            {
                const sem::Operand guard = lo.resolve(s.guard);
                parts.push_back(sem::ifM(guard,
                                         lo.lowerBlock(s.thenBody),
                                         lo.lowerBlock(s.elseBody)));
                return i;
            }
            std::size_t
            operator()(const WhileStmt &s) const
            {
                const sem::Operand guard = lo.resolve(s.guard);
                parts.push_back(
                    sem::whileM(guard, lo.lowerBlock(s.body)));
                return i;
            }
        };
        return std::visit(Visitor{*this, stmts, i, parts, stmt},
                          stmt.node);
    }

    std::unordered_map<std::string, std::int64_t> consts;
    std::unordered_map<std::string, SemRegister> registers;
    std::map<ir::QubitId, std::string> labels;
    std::size_t nextQubit = 0;
    std::size_t placeholderCounter = 0;
};

} // namespace

SemanticsProgram
lowerToSemantics(const Program &program)
{
    return Lowering().run(program);
}

SemanticsProgram
lowerSourceToSemantics(const std::string &source)
{
    return lowerToSemantics(parse(source));
}

} // namespace qb::lang
