/**
 * @file
 * Lowering of full QBorrow programs to the denotational-semantics AST.
 *
 * The circuit elaborator (elaborate.h) handles the paper's restricted
 * tool language: loop-free-after-unrolling, classical, no measurement
 * control flow, with `borrow` realized as concrete qubit allocation.
 * This lowering instead targets the *formal* language of Figure 4.1:
 *
 *  - `if M[q] {...} else {...}` and `while M[q] {...}` become
 *    measurement-guarded branching/loops;
 *  - a scalar (non-@) `borrow a; ...; release a;` becomes a real
 *    sem::BorrowStmt whose placeholder is instantiated
 *    *nondeterministically* from the idle set at interpretation time,
 *    exactly as in the Figure 4.3 semantics;
 *  - `borrow@` and `alloc` registers become concrete qubits (alloc
 *    additionally emits ground-state initialization);
 *  - `let` and `for` are evaluated/unrolled as in the elaborator.
 *
 * The result can be fed to sem::interpret / sem::programIsSafe /
 * sem::terminatesAlmostSurely for exhaustive small-system analysis.
 */

#ifndef QB_LANG_TO_SEMANTICS_H
#define QB_LANG_TO_SEMANTICS_H

#include <map>
#include <string>

#include "lang/ast.h"
#include "semantics/ast.h"

namespace qb::lang {

/** A lowered program plus its qubit naming. */
struct SemanticsProgram
{
    sem::StmtPtr stmt;
    /** Number of concrete qubits allocated by borrow@/alloc. */
    std::uint32_t numQubits = 0;
    /** Source-level name of each concrete qubit. */
    std::map<ir::QubitId, std::string> labels;
};

/**
 * Lower a parsed program to the semantics AST.
 *
 * @throws FatalError on constructs outside the formal language
 *         (array-shaped non-@ borrows, MCX with more than two
 *         controls).
 */
SemanticsProgram lowerToSemantics(const Program &program);

/** parse() + lowerToSemantics(). */
SemanticsProgram lowerSourceToSemantics(const std::string &source);

} // namespace qb::lang

#endif // QB_LANG_TO_SEMANTICS_H
