#include "lang/parser.h"

#include "lang/lexer.h"
#include "support/logging.h"

namespace qb::lang {

namespace {

class Parser
{
  public:
    explicit Parser(std::vector<Token> tokens)
        : toks(std::move(tokens))
    {}

    Program
    parseProgram()
    {
        Program prog;
        if (peek().kind == TokenKind::EndOfFile)
            fail("a QBorrow program must contain at least one statement");
        while (peek().kind != TokenKind::EndOfFile)
            prog.statements.push_back(parseStatement());
        return prog;
    }

  private:
    const Token &peek(std::size_t off = 0) const
    {
        const std::size_t idx = std::min(pos + off, toks.size() - 1);
        return toks[idx];
    }

    Token
    advance()
    {
        Token t = toks[pos];
        if (pos + 1 < toks.size())
            ++pos;
        return t;
    }

    [[noreturn]] void
    fail(const std::string &msg) const
    {
        fatal(peek().loc.toString() + ": " + msg);
    }

    Token
    expect(TokenKind kind)
    {
        if (peek().kind != kind) {
            fail(std::string("expected ") + tokenKindName(kind) +
                 " but found " + tokenKindName(peek().kind) +
                 (peek().text.empty() ? "" : " '" + peek().text + "'"));
        }
        return advance();
    }

    Stmt
    parseStatement()
    {
        const SourceLoc loc = peek().loc;
        switch (peek().kind) {
          case TokenKind::KwLet: {
            advance();
            const std::string name = expect(TokenKind::Ident).text;
            expect(TokenKind::Assign);
            ExprPtr value = parseExpr();
            expect(TokenKind::Semi);
            return {loc, LetStmt{name, std::move(value)}};
          }
          case TokenKind::KwBorrow:
          case TokenKind::KwBorrowAt: {
            const bool skip = advance().kind == TokenKind::KwBorrowAt;
            RegRef reg = parseRegRef();
            expect(TokenKind::Semi);
            return {loc, BorrowStmt{std::move(reg), skip}};
          }
          case TokenKind::KwAlloc: {
            advance();
            RegRef reg = parseRegRef();
            expect(TokenKind::Semi);
            return {loc, AllocStmt{std::move(reg)}};
          }
          case TokenKind::KwRelease: {
            advance();
            const std::string name = expect(TokenKind::Ident).text;
            expect(TokenKind::Semi);
            return {loc, ReleaseStmt{name}};
          }
          case TokenKind::KwX:
            advance();
            return {loc, parseGateArgs(GateStmt::Kind::X, 1, 1)};
          case TokenKind::KwCnot:
            advance();
            return {loc, parseGateArgs(GateStmt::Kind::Cnot, 2, 2)};
          case TokenKind::KwCcnot:
            advance();
            return {loc, parseGateArgs(GateStmt::Kind::Ccnot, 3, 3)};
          case TokenKind::KwMcx:
            advance();
            return {loc, parseGateArgs(GateStmt::Kind::Mcx, 2, 0)};
          case TokenKind::KwH:
            advance();
            return {loc, parseGateArgs(GateStmt::Kind::H, 1, 1)};
          case TokenKind::KwS:
            advance();
            return {loc, parseGateArgs(GateStmt::Kind::S, 1, 1)};
          case TokenKind::KwZ:
            advance();
            return {loc, parseGateArgs(GateStmt::Kind::Z, 1, 1)};
          case TokenKind::KwSwap:
            advance();
            return {loc, parseGateArgs(GateStmt::Kind::Swap, 2, 2)};
          case TokenKind::KwIf: {
            advance();
            RegRef guard = parseGuard();
            std::vector<Stmt> then_body = parseBlock();
            std::vector<Stmt> else_body;
            if (peek().kind == TokenKind::KwElse) {
                advance();
                else_body = parseBlock();
            }
            return {loc, IfStmt{std::move(guard),
                                std::move(then_body),
                                std::move(else_body)}};
          }
          case TokenKind::KwWhile: {
            advance();
            RegRef guard = parseGuard();
            std::vector<Stmt> body = parseBlock();
            return {loc, WhileStmt{std::move(guard),
                                   std::move(body)}};
          }
          case TokenKind::KwFor: {
            advance();
            const std::string var = expect(TokenKind::Ident).text;
            expect(TokenKind::Assign);
            ExprPtr from = parseExpr();
            expect(TokenKind::KwTo);
            ExprPtr to = parseExpr();
            expect(TokenKind::LBrace);
            std::vector<Stmt> body;
            while (peek().kind != TokenKind::RBrace) {
                if (peek().kind == TokenKind::EndOfFile)
                    fail("unterminated for-loop body ('}' expected)");
                body.push_back(parseStatement());
            }
            expect(TokenKind::RBrace);
            return {loc, ForStmt{var, std::move(from), std::move(to),
                                 std::move(body)}};
          }
          default:
            fail(std::string("expected a statement but found ") +
                 tokenKindName(peek().kind) +
                 (peek().text.empty() ? "" : " '" + peek().text + "'"));
        }
    }

    /** Parse '[' reg (',' reg)* ']' ';' with an arity check. */
    GateStmt
    parseGateArgs(GateStmt::Kind kind, std::size_t min_args,
                  std::size_t exact_args)
    {
        expect(TokenKind::LBracket);
        std::vector<RegRef> args;
        args.push_back(parseRegRef());
        while (peek().kind == TokenKind::Comma) {
            advance();
            args.push_back(parseRegRef());
        }
        expect(TokenKind::RBracket);
        expect(TokenKind::Semi);
        if (exact_args != 0 && args.size() != exact_args)
            fail("gate expects exactly " + std::to_string(exact_args) +
                 " operands, got " + std::to_string(args.size()));
        if (args.size() < min_args)
            fail("gate expects at least " + std::to_string(min_args) +
                 " operands, got " + std::to_string(args.size()));
        return GateStmt{kind, std::move(args)};
    }

    /** Parse the measurement guard M[reg] of if/while. */
    RegRef
    parseGuard()
    {
        expect(TokenKind::KwMeasure);
        expect(TokenKind::LBracket);
        RegRef guard = parseRegRef();
        expect(TokenKind::RBracket);
        return guard;
    }

    /** Parse a brace-delimited statement list. */
    std::vector<Stmt>
    parseBlock()
    {
        expect(TokenKind::LBrace);
        std::vector<Stmt> body;
        while (peek().kind != TokenKind::RBrace) {
            if (peek().kind == TokenKind::EndOfFile)
                fail("unterminated block ('}' expected)");
            body.push_back(parseStatement());
        }
        expect(TokenKind::RBrace);
        return body;
    }

    RegRef
    parseRegRef()
    {
        const SourceLoc loc = peek().loc;
        const std::string name = expect(TokenKind::Ident).text;
        ExprPtr index;
        if (peek().kind == TokenKind::LBracket) {
            advance();
            index = parseExpr();
            expect(TokenKind::RBracket);
        }
        return RegRef{loc, name, std::move(index)};
    }

    // expr: term (('+'|'-') term)* with leading unary sign
    ExprPtr
    parseExpr()
    {
        const SourceLoc loc = peek().loc;
        ExprPtr lhs;
        if (peek().kind == TokenKind::Plus ||
            peek().kind == TokenKind::Minus) {
            const char op =
                advance().kind == TokenKind::Plus ? '+' : '-';
            ExprPtr operand = parseTerm();
            lhs = std::make_unique<Expr>(
                Expr{loc, UnaryExpr{op, std::move(operand)}});
        } else {
            lhs = parseTerm();
        }
        while (peek().kind == TokenKind::Plus ||
               peek().kind == TokenKind::Minus) {
            const SourceLoc op_loc = peek().loc;
            const char op =
                advance().kind == TokenKind::Plus ? '+' : '-';
            ExprPtr rhs = parseTerm();
            lhs = std::make_unique<Expr>(Expr{
                op_loc, BinaryExpr{op, std::move(lhs), std::move(rhs)}});
        }
        return lhs;
    }

    // term: factor ('*' factor)*
    ExprPtr
    parseTerm()
    {
        ExprPtr lhs = parseFactor();
        while (peek().kind == TokenKind::Star) {
            const SourceLoc op_loc = peek().loc;
            advance();
            ExprPtr rhs = parseFactor();
            lhs = std::make_unique<Expr>(Expr{
                op_loc,
                BinaryExpr{'*', std::move(lhs), std::move(rhs)}});
        }
        return lhs;
    }

    // factor: NUMBER | ID | '(' expr ')'
    ExprPtr
    parseFactor()
    {
        const SourceLoc loc = peek().loc;
        switch (peek().kind) {
          case TokenKind::Number: {
            const Token t = advance();
            return std::make_unique<Expr>(Expr{loc, NumExpr{t.value}});
          }
          case TokenKind::Ident: {
            const Token t = advance();
            return std::make_unique<Expr>(Expr{loc, IdentExpr{t.text}});
          }
          case TokenKind::LParen: {
            advance();
            ExprPtr inner = parseExpr();
            expect(TokenKind::RParen);
            return inner;
          }
          default:
            fail(std::string(
                     "expected a number, identifier or '(' but found ") +
                 tokenKindName(peek().kind));
        }
    }

    std::vector<Token> toks;
    std::size_t pos = 0;
};

} // namespace

Program
parse(const std::string &source)
{
    return Parser(tokenize(source)).parseProgram();
}

} // namespace qb::lang
