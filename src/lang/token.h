/**
 * @file
 * Tokens and source locations for the QBorrow frontend.
 *
 * The token set mirrors the ANTLR grammar in the paper's artifact
 * appendix (Section 10.3) exactly, plus documented extensions: the
 * MCX keyword for wide controlled gates, the H/S/Z/SWAP gates, and
 * `if M[q] {...} else {...}` / `while M[q] {...}` statements covering
 * the full language of Figure 4.1 (lowered to the semantics engine
 * rather than to a flat circuit).
 */

#ifndef QB_LANG_TOKEN_H
#define QB_LANG_TOKEN_H

#include <cstdint>
#include <string>

namespace qb::lang {

/** 1-based line/column position in the source text. */
struct SourceLoc
{
    int line = 1;
    int column = 1;

    std::string
    toString() const
    {
        return std::to_string(line) + ":" + std::to_string(column);
    }
};

/** Lexical token kinds. */
enum class TokenKind : std::uint8_t {
    // keywords
    KwLet, KwBorrow, KwBorrowAt, KwAlloc, KwRelease, KwFor, KwTo,
    KwX, KwCnot, KwCcnot, KwMcx,
    // full-language extensions (Figure 4.1): measurement-guarded
    // control flow and a small non-classical gate set
    KwIf, KwElse, KwWhile, KwMeasure, KwH, KwS, KwZ, KwSwap,
    // punctuation
    Assign, Semi, Comma, LBracket, RBracket, LBrace, RBrace,
    LParen, RParen,
    // operators
    Plus, Minus, Star,
    // literals
    Ident, Number,
    // control
    EndOfFile,
};

/** A single lexical token. */
struct Token
{
    TokenKind kind = TokenKind::EndOfFile;
    std::string text;
    std::int64_t value = 0; ///< numeric payload for Number
    SourceLoc loc;
};

/** Human-readable token-kind name for diagnostics. */
const char *tokenKindName(TokenKind kind);

} // namespace qb::lang

#endif // QB_LANG_TOKEN_H
