/**
 * @file
 * Abstract syntax tree for QBorrow programs (grammar of Section 10.3).
 *
 * The AST is deliberately close to the concrete grammar: statements for
 * let / borrow / borrow@ / alloc / release / gate applications / for
 * loops, and integer expressions over +, -, * and named constants.
 */

#ifndef QB_LANG_AST_H
#define QB_LANG_AST_H

#include <cstdint>
#include <memory>
#include <string>
#include <variant>
#include <vector>

#include "lang/token.h"

namespace qb::lang {

struct Expr;
using ExprPtr = std::unique_ptr<Expr>;

/** Integer literal. */
struct NumExpr
{
    std::int64_t value;
};

/** Named constant (let binding or loop variable). */
struct IdentExpr
{
    std::string name;
};

/** Binary arithmetic: +, -, *. */
struct BinaryExpr
{
    char op; // '+', '-', '*'
    ExprPtr lhs;
    ExprPtr rhs;
};

/** Unary sign: +e or -e. */
struct UnaryExpr
{
    char op; // '+', '-'
    ExprPtr operand;
};

/** Arithmetic expression node. */
struct Expr
{
    SourceLoc loc;
    std::variant<NumExpr, IdentExpr, BinaryExpr, UnaryExpr> node;
};

/**
 * A register reference: either a bare identifier (scalar register) or
 * an indexed element / sized declaration `name[expr]`.  The same
 * syntactic form serves both declaration sites (where the expression is
 * a size) and use sites (where it is a 1-based element index), exactly
 * as in the paper's grammar.
 */
struct RegRef
{
    SourceLoc loc;
    std::string name;
    ExprPtr index; ///< null for scalar references
};

/** let ID = expr; */
struct LetStmt
{
    std::string name;
    ExprPtr value;
};

/** borrow reg; or borrow@ reg; */
struct BorrowStmt
{
    RegRef reg;
    bool skipVerify; ///< true for borrow@
};

/** alloc reg; (clean, |0>-initialized qubits) */
struct AllocStmt
{
    RegRef reg;
};

/** release ID; */
struct ReleaseStmt
{
    std::string name;
};

/** Gate application; controls first, target last (X family). */
struct GateStmt
{
    enum class Kind { X, Cnot, Ccnot, Mcx, H, S, Z, Swap } kind;
    std::vector<RegRef> args;
};

struct Stmt;

/** if M[reg] { then } else { else }  (else block optional). */
struct IfStmt
{
    RegRef guard;
    std::vector<Stmt> thenBody;
    std::vector<Stmt> elseBody;
};

/** while M[reg] { body }. */
struct WhileStmt
{
    RegRef guard;
    std::vector<Stmt> body;
};

/** for ID = expr to expr { body } (inclusive, auto direction). */
struct ForStmt
{
    std::string var;
    ExprPtr from;
    ExprPtr to;
    std::vector<Stmt> body;
};

/** Statement node. */
struct Stmt
{
    SourceLoc loc;
    std::variant<LetStmt, BorrowStmt, AllocStmt, ReleaseStmt, GateStmt,
                 ForStmt, IfStmt, WhileStmt>
        node;
};

/** A parsed QBorrow compilation unit. */
struct Program
{
    std::vector<Stmt> statements;
};

} // namespace qb::lang

#endif // QB_LANG_AST_H
