/**
 * @file
 * Elaboration of QBorrow ASTs into flat gate-level circuits.
 *
 * Elaboration evaluates constant expressions, unrolls for loops,
 * resolves register references to dense qubit ids, enforces scoping
 * (no use before borrow / after release, distinct gate operands) and
 * records, for each qubit, its *lifetime*: the gate-index range between
 * its borrow and its release.  The verifier then checks safe
 * uncomputation of each dirty qubit over exactly the statements inside
 * its borrow ... release scope, matching Definition 5.1 of the paper.
 */

#ifndef QB_LANG_ELABORATE_H
#define QB_LANG_ELABORATE_H

#include <string>
#include <vector>

#include "ir/circuit.h"
#include "lang/ast.h"

namespace qb::lang {

/** How a qubit was introduced at the source level. */
enum class QubitRole {
    BorrowVerify, ///< borrow: dirty qubit, safe uncomputation required
    BorrowSkip,   ///< borrow@: dirty qubit, verification waived
    Alloc,        ///< alloc: clean |0>-initialized ancilla
};

/** Per-qubit elaboration results. */
struct QubitInfo
{
    std::string name;        ///< source-level name, e.g. "a[3]"
    QubitRole role;
    std::size_t scopeBegin;  ///< first gate index of the lifetime
    std::size_t scopeEnd;    ///< one past the last gate of the lifetime
    /** Declaration site (the borrow/alloc statement's register). */
    SourceLoc loc;
};

/** A fully elaborated program: a circuit plus qubit metadata. */
struct ElaboratedProgram
{
    ir::Circuit circuit{0};
    std::vector<QubitInfo> qubits;
    /**
     * Source location of each gate, parallel to circuit.gates(): a
     * for-loop body emits its statement's location once per
     * iteration.  Consumed by the lint driver (analysis/lint.h) for
     * located diagnostics.
     */
    std::vector<SourceLoc> gateLocs;

    /** Ids of qubits with the given role. */
    std::vector<ir::QubitId> qubitsWithRole(QubitRole role) const;
};

/**
 * Elaborate a parsed program.
 *
 * @throws FatalError with located messages on semantic errors
 *         (undefined names, out-of-range indices, use after release,
 *         duplicate gate operands, ...).
 */
ElaboratedProgram elaborate(const Program &program);

/** parse() + elaborate() in one step. */
ElaboratedProgram elaborateSource(const std::string &source);

} // namespace qb::lang

#endif // QB_LANG_ELABORATE_H
