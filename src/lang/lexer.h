/**
 * @file
 * Hand-written lexer for QBorrow source text.
 *
 * Replaces the ANTLR4-generated lexer of the paper's artifact; accepts
 * the same language: identifiers, decimal numbers, the keyword set, //
 * line comments and C-style block comments.
 */

#ifndef QB_LANG_LEXER_H
#define QB_LANG_LEXER_H

#include <string>
#include <vector>

#include "lang/token.h"

namespace qb::lang {

/**
 * Tokenize @p source.
 *
 * @throws FatalError with line/column context on illegal characters or
 *         unterminated block comments.
 */
std::vector<Token> tokenize(const std::string &source);

} // namespace qb::lang

#endif // QB_LANG_LEXER_H
