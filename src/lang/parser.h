/**
 * @file
 * Recursive-descent parser for QBorrow.
 *
 * Accepts the grammar of the paper's artifact appendix (Section 10.3)
 * and produces the AST of ast.h.  Diagnostics carry line:column
 * positions and name the expected token.
 */

#ifndef QB_LANG_PARSER_H
#define QB_LANG_PARSER_H

#include <string>

#include "lang/ast.h"

namespace qb::lang {

/**
 * Parse QBorrow source text into an AST.
 *
 * @throws FatalError with a located message on syntax errors.
 */
Program parse(const std::string &source);

} // namespace qb::lang

#endif // QB_LANG_PARSER_H
