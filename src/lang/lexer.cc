#include "lang/lexer.h"

#include <cctype>
#include <unordered_map>

#include "support/logging.h"

namespace qb::lang {

const char *
tokenKindName(TokenKind kind)
{
    switch (kind) {
      case TokenKind::KwLet:      return "'let'";
      case TokenKind::KwBorrow:   return "'borrow'";
      case TokenKind::KwBorrowAt: return "'borrow@'";
      case TokenKind::KwAlloc:    return "'alloc'";
      case TokenKind::KwRelease:  return "'release'";
      case TokenKind::KwFor:      return "'for'";
      case TokenKind::KwTo:       return "'to'";
      case TokenKind::KwX:        return "'X'";
      case TokenKind::KwCnot:     return "'CNOT'";
      case TokenKind::KwCcnot:    return "'CCNOT'";
      case TokenKind::KwMcx:      return "'MCX'";
      case TokenKind::KwIf:       return "'if'";
      case TokenKind::KwElse:     return "'else'";
      case TokenKind::KwWhile:    return "'while'";
      case TokenKind::KwMeasure:  return "'M'";
      case TokenKind::KwH:        return "'H'";
      case TokenKind::KwS:        return "'S'";
      case TokenKind::KwZ:        return "'Z'";
      case TokenKind::KwSwap:     return "'SWAP'";
      case TokenKind::Assign:     return "'='";
      case TokenKind::Semi:       return "';'";
      case TokenKind::Comma:      return "','";
      case TokenKind::LBracket:   return "'['";
      case TokenKind::RBracket:   return "']'";
      case TokenKind::LBrace:     return "'{'";
      case TokenKind::RBrace:     return "'}'";
      case TokenKind::LParen:     return "'('";
      case TokenKind::RParen:     return "')'";
      case TokenKind::Plus:       return "'+'";
      case TokenKind::Minus:      return "'-'";
      case TokenKind::Star:       return "'*'";
      case TokenKind::Ident:      return "identifier";
      case TokenKind::Number:     return "number";
      case TokenKind::EndOfFile:  return "end of input";
    }
    return "?";
}

namespace {

const std::unordered_map<std::string, TokenKind> kKeywords = {
    {"let", TokenKind::KwLet},
    {"borrow", TokenKind::KwBorrow},
    {"alloc", TokenKind::KwAlloc},
    {"release", TokenKind::KwRelease},
    {"for", TokenKind::KwFor},
    {"to", TokenKind::KwTo},
    {"X", TokenKind::KwX},
    {"CNOT", TokenKind::KwCnot},
    {"CCNOT", TokenKind::KwCcnot},
    {"MCX", TokenKind::KwMcx},
    {"if", TokenKind::KwIf},
    {"else", TokenKind::KwElse},
    {"while", TokenKind::KwWhile},
    {"M", TokenKind::KwMeasure},
    {"H", TokenKind::KwH},
    {"S", TokenKind::KwS},
    {"Z", TokenKind::KwZ},
    {"SWAP", TokenKind::KwSwap},
};

} // namespace

std::vector<Token>
tokenize(const std::string &source)
{
    std::vector<Token> tokens;
    SourceLoc loc;
    std::size_t i = 0;
    const std::size_t n = source.size();

    auto advance = [&](std::size_t count = 1) {
        for (std::size_t k = 0; k < count && i < n; ++k) {
            if (source[i] == '\n') {
                ++loc.line;
                loc.column = 1;
            } else {
                ++loc.column;
            }
            ++i;
        }
    };
    auto peek = [&](std::size_t off = 0) -> char {
        return i + off < n ? source[i + off] : '\0';
    };

    while (i < n) {
        const char c = peek();
        if (std::isspace(static_cast<unsigned char>(c))) {
            advance();
            continue;
        }
        if (c == '/' && peek(1) == '/') {
            while (i < n && peek() != '\n')
                advance();
            continue;
        }
        if (c == '/' && peek(1) == '*') {
            const SourceLoc start = loc;
            advance(2);
            while (i < n && !(peek() == '*' && peek(1) == '/'))
                advance();
            if (i >= n)
                fatal(start.toString() +
                      ": unterminated block comment");
            advance(2);
            continue;
        }

        Token tok;
        tok.loc = loc;
        if (std::isdigit(static_cast<unsigned char>(c))) {
            std::string num;
            while (std::isdigit(static_cast<unsigned char>(peek()))) {
                num += peek();
                advance();
            }
            tok.kind = TokenKind::Number;
            tok.text = num;
            try {
                tok.value = std::stoll(num);
            } catch (const std::exception &) {
                fatal(tok.loc.toString() + ": number literal '" + num +
                      "' out of range");
            }
            tokens.push_back(std::move(tok));
            continue;
        }
        if (std::isalpha(static_cast<unsigned char>(c)) || c == '_') {
            std::string word;
            while (std::isalnum(static_cast<unsigned char>(peek())) ||
                   peek() == '_') {
                word += peek();
                advance();
            }
            auto kw = kKeywords.find(word);
            if (kw != kKeywords.end()) {
                tok.kind = kw->second;
                // 'borrow@' is a single token in the grammar.
                if (tok.kind == TokenKind::KwBorrow && peek() == '@') {
                    advance();
                    tok.kind = TokenKind::KwBorrowAt;
                    word += '@';
                }
            } else {
                tok.kind = TokenKind::Ident;
            }
            tok.text = std::move(word);
            tokens.push_back(std::move(tok));
            continue;
        }

        switch (c) {
          case '=': tok.kind = TokenKind::Assign;   break;
          case ';': tok.kind = TokenKind::Semi;     break;
          case ',': tok.kind = TokenKind::Comma;    break;
          case '[': tok.kind = TokenKind::LBracket; break;
          case ']': tok.kind = TokenKind::RBracket; break;
          case '{': tok.kind = TokenKind::LBrace;   break;
          case '}': tok.kind = TokenKind::RBrace;   break;
          case '(': tok.kind = TokenKind::LParen;   break;
          case ')': tok.kind = TokenKind::RParen;   break;
          case '+': tok.kind = TokenKind::Plus;     break;
          case '-': tok.kind = TokenKind::Minus;    break;
          case '*': tok.kind = TokenKind::Star;     break;
          default:
            fatal(loc.toString() + ": illegal character '" +
                  std::string(1, c) + "'");
        }
        tok.text = std::string(1, c);
        advance();
        tokens.push_back(std::move(tok));
    }

    Token eof;
    eof.kind = TokenKind::EndOfFile;
    eof.loc = loc;
    tokens.push_back(std::move(eof));
    return tokens;
}

} // namespace qb::lang
