#include "lang/elaborate.h"

#include <optional>
#include <unordered_map>

#include "lang/parser.h"
#include "support/logging.h"
#include "support/strings.h"

namespace qb::lang {

namespace {

/** Cap on total allocated qubits; guards against runaway loops. */
constexpr std::size_t kMaxQubits = 1u << 20;

struct Register
{
    ir::QubitId base = 0;
    std::int64_t size = 0;
    QubitRole role = QubitRole::BorrowVerify;
    bool isArray = false;
    bool released = false;
};

class Elaborator
{
  public:
    ElaboratedProgram
    run(const Program &program)
    {
        for (const Stmt &s : program.statements)
            execStmt(s);
        // Unreleased registers live until the end of the program, as
        // in the paper's adder.qbr which has no release statements.
        const std::size_t end = gates.size();
        for (QubitInfo &info : result.qubits)
            if (info.scopeEnd == kOpenScope)
                info.scopeEnd = end;

        result.circuit =
            ir::Circuit(static_cast<std::uint32_t>(nextQubit));
        for (std::size_t q = 0; q < result.qubits.size(); ++q)
            result.circuit.setLabel(static_cast<ir::QubitId>(q),
                                    result.qubits[q].name);
        for (ir::Gate &g : gates)
            result.circuit.append(std::move(g));
        return std::move(result);
    }

  private:
    static constexpr std::size_t kOpenScope = ~std::size_t{0};

    [[noreturn]] static void
    fail(const SourceLoc &loc, const std::string &msg)
    {
        fatal(loc.toString() + ": " + msg);
    }

    std::int64_t
    eval(const Expr &e)
    {
        struct Visitor
        {
            Elaborator &el;
            const Expr &expr;

            std::int64_t operator()(const NumExpr &n) const
            {
                return n.value;
            }
            std::int64_t
            operator()(const IdentExpr &id) const
            {
                auto it = el.consts.find(id.name);
                if (it == el.consts.end())
                    fail(expr.loc,
                         "undefined constant '" + id.name + "'");
                return it->second;
            }
            std::int64_t
            operator()(const BinaryExpr &b) const
            {
                const std::int64_t l = el.eval(*b.lhs);
                const std::int64_t r = el.eval(*b.rhs);
                switch (b.op) {
                  case '+': return l + r;
                  case '-': return l - r;
                  default:  return l * r;
                }
            }
            std::int64_t
            operator()(const UnaryExpr &u) const
            {
                const std::int64_t v = el.eval(*u.operand);
                return u.op == '-' ? -v : v;
            }
        };
        return std::visit(Visitor{*this, e}, e.node);
    }

    void
    declareRegister(const RegRef &reg, QubitRole role)
    {
        auto it = registers.find(reg.name);
        if (it != registers.end() && !it->second.released)
            fail(reg.loc, "register '" + reg.name +
                          "' is already in scope");
        if (consts.count(reg.name))
            fail(reg.loc, "'" + reg.name +
                          "' already names a constant");
        std::int64_t size = 1;
        if (reg.index) {
            size = eval(*reg.index);
            if (size < 1)
                fail(reg.loc,
                     format("register '%s' must have positive size, "
                            "got %lld",
                            reg.name.c_str(),
                            static_cast<long long>(size)));
        }
        if (nextQubit + static_cast<std::size_t>(size) > kMaxQubits)
            fail(reg.loc, "qubit allocation limit exceeded");
        Register r;
        r.base = static_cast<ir::QubitId>(nextQubit);
        r.size = size;
        r.role = role;
        r.isArray = reg.index != nullptr;
        registers[reg.name] = r;
        for (std::int64_t i = 0; i < size; ++i) {
            QubitInfo info;
            info.name = reg.index
                ? format("%s[%lld]", reg.name.c_str(),
                         static_cast<long long>(i + 1))
                : reg.name;
            info.role = role;
            info.scopeBegin = gates.size();
            info.scopeEnd = kOpenScope;
            info.loc = reg.loc;
            result.qubits.push_back(std::move(info));
        }
        nextQubit += static_cast<std::size_t>(size);
    }

    ir::QubitId
    resolveQubit(const RegRef &reg)
    {
        auto it = registers.find(reg.name);
        if (it == registers.end())
            fail(reg.loc, "unknown register '" + reg.name + "'");
        const Register &r = it->second;
        if (r.released)
            fail(reg.loc, "register '" + reg.name +
                          "' was already released");
        if (!reg.index) {
            if (r.isArray)
                fail(reg.loc, "register '" + reg.name +
                              "' is an array; an index is required");
            return r.base;
        }
        if (!r.isArray)
            fail(reg.loc, "register '" + reg.name +
                          "' is a scalar and cannot be indexed");
        const std::int64_t idx = eval(*reg.index);
        if (idx < 1 || idx > r.size)
            fail(reg.loc,
                 format("index %lld out of range for register "
                        "'%s' of size %lld (indices are 1-based)",
                        static_cast<long long>(idx), reg.name.c_str(),
                        static_cast<long long>(r.size)));
        return r.base + static_cast<ir::QubitId>(idx - 1);
    }

    void
    execStmt(const Stmt &stmt)
    {
        struct Visitor
        {
            Elaborator &el;
            const Stmt &stmt;

            void
            operator()(const LetStmt &s) const
            {
                if (el.registers.count(s.name) &&
                    !el.registers[s.name].released)
                    fail(stmt.loc, "'" + s.name +
                                   "' already names a register");
                el.consts[s.name] = el.eval(*s.value);
            }
            void
            operator()(const BorrowStmt &s) const
            {
                el.declareRegister(s.reg,
                                   s.skipVerify
                                       ? QubitRole::BorrowSkip
                                       : QubitRole::BorrowVerify);
            }
            void
            operator()(const AllocStmt &s) const
            {
                el.declareRegister(s.reg, QubitRole::Alloc);
            }
            void
            operator()(const ReleaseStmt &s) const
            {
                auto it = el.registers.find(s.name);
                if (it == el.registers.end())
                    fail(stmt.loc,
                         "unknown register '" + s.name + "'");
                if (it->second.released)
                    fail(stmt.loc, "register '" + s.name +
                                   "' was already released");
                it->second.released = true;
                const Register &r = it->second;
                for (std::int64_t i = 0; i < r.size; ++i)
                    el.result.qubits[r.base + i].scopeEnd =
                        el.gates.size();
            }
            void
            operator()(const GateStmt &s) const
            {
                std::vector<ir::QubitId> qs;
                qs.reserve(s.args.size());
                for (const RegRef &arg : s.args)
                    qs.push_back(el.resolveQubit(arg));
                for (std::size_t i = 0; i < qs.size(); ++i)
                    for (std::size_t j = i + 1; j < qs.size(); ++j)
                        if (qs[i] == qs[j])
                            fail(stmt.loc,
                                 "gate operands must be distinct "
                                 "qubits");
                switch (s.kind) {
                  case GateStmt::Kind::X:
                    el.gates.push_back(ir::Gate::x(qs[0]));
                    break;
                  case GateStmt::Kind::Cnot:
                    el.gates.push_back(ir::Gate::cnot(qs[0], qs[1]));
                    break;
                  case GateStmt::Kind::Ccnot:
                    el.gates.push_back(
                        ir::Gate::ccnot(qs[0], qs[1], qs[2]));
                    break;
                  case GateStmt::Kind::Mcx: {
                    const ir::QubitId target = qs.back();
                    qs.pop_back();
                    el.gates.push_back(
                        ir::Gate::mcx(std::move(qs), target));
                    break;
                  }
                  case GateStmt::Kind::H:
                    el.gates.push_back(ir::Gate::h(qs[0]));
                    break;
                  case GateStmt::Kind::S:
                    el.gates.push_back(ir::Gate::s(qs[0]));
                    break;
                  case GateStmt::Kind::Z:
                    el.gates.push_back(ir::Gate::z(qs[0]));
                    break;
                  case GateStmt::Kind::Swap:
                    el.gates.push_back(ir::Gate::swap(qs[0], qs[1]));
                    break;
                }
                el.result.gateLocs.push_back(stmt.loc);
            }
            void
            operator()(const IfStmt &) const
            {
                fail(stmt.loc,
                     "measurement-guarded 'if' cannot be flattened "
                     "to a circuit; use lang::lowerToSemantics()");
            }
            void
            operator()(const WhileStmt &) const
            {
                fail(stmt.loc,
                     "measurement-guarded 'while' cannot be "
                     "flattened to a circuit; use "
                     "lang::lowerToSemantics()");
            }
            void
            operator()(const ForStmt &s) const
            {
                const std::int64_t from = el.eval(*s.from);
                const std::int64_t to = el.eval(*s.to);
                const std::int64_t step = from <= to ? 1 : -1;
                // Save any shadowed binding of the loop variable.
                std::optional<std::int64_t> saved;
                auto prev = el.consts.find(s.var);
                if (prev != el.consts.end())
                    saved = prev->second;
                for (std::int64_t i = from;; i += step) {
                    el.consts[s.var] = i;
                    for (const Stmt &inner : s.body)
                        el.execStmt(inner);
                    if (i == to)
                        break;
                }
                if (saved)
                    el.consts[s.var] = *saved;
                else
                    el.consts.erase(s.var);
            }
        };
        std::visit(Visitor{*this, stmt}, stmt.node);
    }

    std::unordered_map<std::string, std::int64_t> consts;
    std::unordered_map<std::string, Register> registers;
    std::vector<ir::Gate> gates;
    std::size_t nextQubit = 0;
    ElaboratedProgram result;
};

} // namespace

std::vector<ir::QubitId>
ElaboratedProgram::qubitsWithRole(QubitRole role) const
{
    std::vector<ir::QubitId> out;
    for (std::size_t q = 0; q < qubits.size(); ++q)
        if (qubits[q].role == role)
            out.push_back(static_cast<ir::QubitId>(q));
    return out;
}

ElaboratedProgram
elaborate(const Program &program)
{
    return Elaborator().run(program);
}

ElaboratedProgram
elaborateSource(const std::string &source)
{
    return elaborate(parse(source));
}

} // namespace qb::lang
