/**
 * @file
 * The qborrow server: a long-lived multi-program verification daemon.
 *
 * `qborrow` started life as a batch CLI: every invocation paid worker
 * pool startup, session construction and arena/solver warm-up for one
 * program, then threw it all away.  The Server turns that into a
 * serving system.  It listens on a Unix domain socket, speaks the
 * line-delimited JSON protocol of server/protocol.h, and feeds every
 * submitted program through ONE process-wide core::Scheduler pool
 * created at startup, so across requests:
 *
 *   - pool startup is paid once, not per program;
 *   - concurrent programs' (qubit, condition) races interleave fairly
 *     on the shared workers (each request gets its own scheduler
 *     fairness band);
 *   - admission is bounded (server/request_queue.h): when the backlog
 *     is full a new request is refused with a `queue full` error
 *     instead of growing memory without bound;
 *   - an in-flight request can be cancelled (per-request
 *     core::CancelSource), and shutdown drains in-flight races
 *     gracefully before the process exits.
 *
 * Threading model: one accept loop, one reader thread per connection
 * (requests are parsed off the SAT pool), `concurrency` request
 * workers that parse + elaborate programs and drive
 * core::verifyAll() over the shared scheduler, and the scheduler's own
 * `jobs` SAT workers.  Results stream back per qubit as they are
 * produced; responses of concurrent requests on one connection
 * interleave and are matched by `id`.
 *
 * Determinism: verdicts and counterexamples of a request are the same
 * as a one-shot `qborrow` run of the same program with the same
 * options, regardless of what else is queued - counterexamples come
 * from the engine's deterministic replay solve, and admission order
 * only affects timing fields.
 */

#ifndef QB_SERVER_SERVER_H
#define QB_SERVER_SERVER_H

#include <atomic>
#include <cstdint>
#include <memory>
#include <string>

#include "core/engine.h"

namespace qb::server {

/** Daemon configuration (fixed for the server's lifetime). */
struct ServerOptions
{
    /** Filesystem path of the Unix domain socket to listen on
     *  (empty = no Unix listener; at least one of socketPath /
     *  tcpAddress must be set). */
    std::string socketPath;

    /** TCP "host:port" to also listen on (empty = no TCP listener;
     *  port 0 binds an ephemeral port - see Server::tcpEndpoint()). */
    std::string tcpAddress;

    /**
     * Shared secret for the `auth` op.  When non-empty, the FIRST
     * frame on every connection (either transport) must be
     * `{"op":"auth","token":...}` with this token; any other frame -
     * or a wrong token - is rejected before it can reach the
     * admission queue, and a wrong token closes the connection.
     * Empty = no authentication (the `auth` op still answers ok).
     */
    std::string authToken;

    /** Open connections allowed at once (0 = unlimited).  Excess
     *  accepts are answered with an error line and closed. */
    std::size_t maxConnections = 0;

    /** Admitted verify requests allowed per connection at once
     *  (0 = unlimited). */
    std::size_t maxInflightPerConnection = 0;

    /** Close a connection with no traffic and no in-flight work for
     *  this long (0 = never). */
    unsigned idleTimeoutSeconds = 0;

    /** Serving-tier program cache capacity (0 disables). */
    std::size_t programCacheCapacity = 64;

    /** Serving-tier result cache capacity (0 disables). */
    std::size_t resultCacheCapacity = 256;

    /**
     * Per-request verification defaults (lanes, portfolio, budget,
     * counterexamples, inprocessing interval).  A request's `options`
     * object overrides the overridable subset per program; `jobs` is
     * ignored here - the pool is sized by ServerOptions::jobs.
     */
    core::EngineOptions engine;

    /** Default for requests that do not set `options.clean`. */
    bool checkCleanAncillas = false;

    /** Bound on admitted-but-unstarted requests (backpressure). */
    std::size_t queueCapacity = 16;

    /** Request workers = programs verified concurrently. */
    unsigned concurrency = 2;

    /** SAT workers in the shared scheduler pool (0 = hardware). */
    unsigned jobs = 0;
};

class Server
{
  public:
    /** Monotonic service counters (approximate totals, lock-free). */
    struct Counters
    {
        std::uint64_t connections = 0; ///< accepted connections
        std::uint64_t requests = 0;    ///< admitted verify requests
        std::uint64_t served = 0;      ///< verify requests completed
        std::uint64_t cancelled = 0;   ///< verify requests cancelled
        std::uint64_t rejected = 0;    ///< refused: queue full
        std::uint64_t errors = 0;      ///< malformed/unparsable inputs
    };

    /**
     * Bind and listen on every configured endpoint: a Unix domain
     * socket at options.socketPath (a stale socket file - nothing
     * accepting on it - is replaced; a LIVE one is an error), a TCP
     * socket at options.tcpAddress, or both.
     * @throws FatalError when no endpoint is configured, the socket
     *         path is unwritable / too long for sockaddr_un / already
     *         served by another process, or the TCP address cannot be
     *         resolved or bound.
     */
    explicit Server(ServerOptions options);

    /** shutdown() if still running. */
    ~Server();

    Server(const Server &) = delete;
    Server &operator=(const Server &) = delete;

    /** Spawn the accept loop and request workers; returns at once. */
    void start();

    /**
     * start(), then block until a client sends `shutdown` or
     * @p external_stop becomes true (polled; a signal handler may set
     * it), then shutdown().
     */
    void run(const std::atomic<bool> *external_stop = nullptr);

    /**
     * Graceful shutdown: stop accepting, refuse new admissions, let
     * the workers DRAIN every admitted request (in-flight races
     * complete and their results are delivered), then close all
     * connections and remove the socket file.  Idempotent.
     */
    void shutdown();

    /** Has a client's `shutdown` request (or run()'s stop) fired? */
    bool stopRequested() const;

    const std::string &socketPath() const;
    /** Actual bound TCP endpoint ("host:port", with the kernel-chosen
     *  port when 0 was configured); empty when TCP is off. */
    std::string tcpEndpoint() const;
    Counters counters() const;

  private:
    struct Impl;
    std::unique_ptr<Impl> impl;
};

} // namespace qb::server

#endif // QB_SERVER_SERVER_H
