/**
 * @file
 * Bounded admission queue between the server's connection readers and
 * its request workers.
 *
 * This queue is the server's BACKPRESSURE point: readers admit a
 * verify request with tryPush(), which refuses (rather than blocks)
 * when the queue is full, so a flooding client gets an immediate
 * `queue full` error instead of growing the daemon's memory without
 * bound - and a slow program cannot wedge the accept loop.  Request
 * workers block in pop() and drain in FIFO order; close() wakes them
 * for shutdown after the remaining entries are served (graceful
 * drain).
 */

#ifndef QB_SERVER_REQUEST_QUEUE_H
#define QB_SERVER_REQUEST_QUEUE_H

#include <condition_variable>
#include <deque>
#include <memory>
#include <mutex>
#include <optional>

#include "core/engine.h"
#include "server/protocol.h"

namespace qb::server {

/** The server's per-connection record; defined in server.cc. */
struct Connection;

/** One admitted verify request, queued for a request worker. */
struct QueuedRequest
{
    Request request;
    /** Per-request stop flag; cancel ops and disconnects fire it. */
    std::shared_ptr<core::CancelSource> cancel;
    /** The submitting connection (response sink). */
    std::shared_ptr<Connection> connection;
};

class RequestQueue
{
  public:
    /** @p capacity = maximum pending (admitted, unstarted)
     *  requests. */
    explicit RequestQueue(std::size_t capacity);

    /**
     * Admit @p item.  Returns false - WITHOUT blocking - when the
     * queue is full or closed; the caller turns that into an error
     * response (backpressure).
     */
    bool tryPush(QueuedRequest item);

    /**
     * Take the oldest pending request, blocking while the queue is
     * empty and open.  Returns nullopt once the queue is closed AND
     * drained: the worker's signal to exit.
     */
    std::optional<QueuedRequest> pop();

    /** Refuse new pushes; wake poppers once the backlog drains. */
    void close();

    std::size_t capacity() const { return capacity_; }
    /** Pending (admitted, not yet popped) requests. */
    std::size_t size() const;
    bool closed() const;

  private:
    const std::size_t capacity_;
    mutable std::mutex mutex_;
    std::condition_variable ready_;
    std::deque<QueuedRequest> items_; ///< guarded by mutex_
    bool closed_ = false;             ///< guarded by mutex_
};

} // namespace qb::server

#endif // QB_SERVER_REQUEST_QUEUE_H
