#include "server/server.h"

#include <cerrno>
#include <chrono>
#include <condition_variable>
#include <map>
#include <mutex>
#include <thread>
#include <vector>

#include <poll.h>
#include <sys/socket.h>
#include <sys/time.h>
#include <unistd.h>

#include "server/protocol.h"
#include "server/request_queue.h"
#include "serving/serving.h"
#include "serving/transport.h"
#include "support/logging.h"
#include "support/strings.h"

namespace qb::server {

namespace {

/** A request line longer than this (64 MiB) closes the connection:
 *  the reader buffers whole lines, and an endless unterminated line
 *  would otherwise grow the daemon's memory without bound. */
constexpr std::size_t kMaxLineBytes = 64u << 20;

} // namespace

/**
 * One accepted client connection.  The fd is written by the reader
 * thread (acks, errors) and by request workers (streamed results)
 * concurrently, serialized by writeMutex; it is closed by the
 * destructor, which runs only when the reader AND every queued
 * request referencing this connection are done with it.
 */
struct Connection
{
    int fd = -1;
    std::uint64_t id = 0;
    std::mutex writeMutex;
    std::atomic<bool> open{true};
    /** Has this connection presented the server's auth token?  Only
     *  consulted when a token is configured. */
    std::atomic<bool> authed{false};
    /** Admitted verify requests currently queued or running. */
    std::atomic<std::size_t> inflight{0};
    /** steady_clock ticks of the last read or successful write; the
     *  idle sweep compares against it (skipping connections with
     *  in-flight work). */
    std::atomic<std::chrono::steady_clock::rep> lastActivity{0};

    void
    touch()
    {
        lastActivity.store(std::chrono::steady_clock::now()
                               .time_since_epoch()
                               .count(),
                           std::memory_order_relaxed);
    }

    ~Connection()
    {
        if (fd >= 0)
            ::close(fd);
    }

    /** Write one protocol line (appends '\n').  A failed write - the
     *  peer is gone, or stopped reading for longer than the send
     *  timeout - marks the connection closed; later sends become
     *  no-ops rather than errors. */
    void
    sendLine(const std::string &line)
    {
        const std::lock_guard<std::mutex> guard(writeMutex);
        sendLineLocked(line);
    }

    /** sendLine() body; the caller holds writeMutex. */
    void
    sendLineLocked(const std::string &line)
    {
        if (!open.load(std::memory_order_acquire))
            return;
        std::string frame = line;
        frame += '\n';
        std::size_t sent = 0;
        while (sent < frame.size()) {
            const ssize_t n =
                ::send(fd, frame.data() + sent, frame.size() - sent,
                       MSG_NOSIGNAL);
            if (n <= 0) {
                if (n < 0 && errno == EINTR)
                    continue;
                // EAGAIN here means the SO_SNDTIMEO send timeout
                // expired with the peer's buffer still full: the
                // client stopped reading.  Treat it like a
                // disconnect - a stalled client must not wedge a
                // request worker (or shutdown) forever.
                open.store(false, std::memory_order_release);
                return;
            }
            sent += static_cast<std::size_t>(n);
        }
        touch();
    }
};

struct Server::Impl
{
    ServerOptions options;
    /** Bound endpoints the accept loop polls (Unix socket, TCP, or
     *  both - see serving/transport.h). */
    std::vector<std::unique_ptr<serving::Listener>> listeners;
    /** Actual bound TCP "host:port" (empty when TCP is off). */
    std::string tcpEndpointStr;

    /** THE process-wide SAT worker pool, shared by every request. */
    std::shared_ptr<core::Scheduler> scheduler;
    RequestQueue queue;
    /** Warm-cache layer between the workers and the engine. */
    serving::ServingTier tier;
    const std::chrono::steady_clock::time_point startTime =
        std::chrono::steady_clock::now();

    std::atomic<bool> started{false};
    std::atomic<bool> stopping{false};
    std::atomic<bool> stopRequested{false};
    bool shutdownDone = false; ///< guarded by lifecycleMutex
    std::mutex lifecycleMutex;
    std::condition_variable stopCv;

    std::thread acceptThread;
    std::vector<std::thread> workerThreads;

    std::mutex connectionsMutex;
    std::vector<std::shared_ptr<Connection>> connections;
    /** Reader threads by connection id; finished ones are reaped by
     *  the accept loop (reapFinishedReadersLocked). */
    std::map<std::uint64_t, std::thread> readerThreads;
    std::vector<std::uint64_t> finishedReaders;
    std::uint64_t nextConnectionId = 1;

    /** Admitted (queued or running) requests by (connection, id):
     *  the lookup table `cancel` ops and disconnects fire into. */
    std::mutex inflightMutex;
    std::map<std::pair<std::uint64_t, std::int64_t>,
             std::shared_ptr<core::CancelSource>>
        inflight;

    /** Rotating fairness-band allocator (band 0 is never handed
     *  out: it is the default band of non-server work). */
    std::atomic<unsigned> bandCounter{0};

    std::atomic<std::uint64_t> statConnections{0};
    std::atomic<std::uint64_t> statRequests{0};
    std::atomic<std::uint64_t> statServed{0};
    std::atomic<std::uint64_t> statCancelled{0};
    std::atomic<std::uint64_t> statRejected{0};
    std::atomic<std::uint64_t> statErrors{0};
    std::atomic<std::uint64_t> statConnRefused{0};
    std::atomic<std::uint64_t> statAuthRejected{0};
    std::atomic<std::uint64_t> statOpVerify{0};
    std::atomic<std::uint64_t> statOpCancel{0};
    std::atomic<std::uint64_t> statOpPing{0};
    std::atomic<std::uint64_t> statOpStats{0};
    std::atomic<std::uint64_t> statOpShutdown{0};
    std::atomic<std::uint64_t> statOpAuth{0};
    /** Conditions the static analyzer discharged, summed over every
     *  verify the SAT tier actually ran (result-cache hits replay a
     *  stored report whose discharges were counted when stored). */
    std::atomic<std::uint64_t> statAnalysisDischarged{0};
    /** Of those, discharges the GF(2)-affine dataflow pass proved
     *  (the only pass that also skips building the condition). */
    std::atomic<std::uint64_t> statAnalysisAffine{0};
    /** Binary implication graph pass totals, same accumulation
     *  contract as statAnalysisDischarged (fresh runs only). */
    std::atomic<std::uint64_t> statSccMergedVars{0};
    std::atomic<std::uint64_t> statProbedFailed{0};
    std::atomic<std::uint64_t> statHyperBinaries{0};
    std::atomic<std::uint64_t> statTransitiveReduced{0};

    explicit Impl(ServerOptions opts)
        : options(std::move(opts)), queue(options.queueCapacity),
          tier(serving::ServingOptions{options.programCacheCapacity,
                                       options.resultCacheCapacity})
    {}

    void createListeners();
    void acceptLoop();
    void acceptOne(serving::Listener &listener);
    void sweepIdleConnections();
    void reapFinishedReadersLocked();
    void readerLoop(std::shared_ptr<Connection> connection);
    void handleLine(const std::shared_ptr<Connection> &connection,
                    const std::string &line);
    void workerLoop();
    void serveRequest(QueuedRequest item);
    core::EngineOptions engineOptionsFor(const RequestOptions &req);
    void dropInflight(std::uint64_t connection_id, std::int64_t id);
    void cancelConnection(std::uint64_t connection_id);
    void requestStop();
};

void
Server::Impl::createListeners()
{
    if (options.socketPath.empty() && options.tcpAddress.empty())
        fatal("server: no endpoint configured (need a socket path "
              "or a TCP address)");
    if (!options.socketPath.empty())
        listeners.push_back(
            serving::makeUnixListener(options.socketPath));
    if (!options.tcpAddress.empty()) {
        listeners.push_back(
            serving::makeTcpListener(options.tcpAddress));
        tcpEndpointStr = listeners.back()->boundAddress();
    }
}

void
Server::Impl::acceptLoop()
{
    std::vector<pollfd> pfds(listeners.size());
    while (!stopping.load(std::memory_order_acquire)) {
        for (std::size_t i = 0; i < listeners.size(); ++i)
            pfds[i] = pollfd{listeners[i]->fd(), POLLIN, 0};
        const int ready =
            ::poll(pfds.data(), pfds.size(), 200);
        sweepIdleConnections();
        if (ready <= 0)
            continue; // timeout (re-check stopping) or EINTR
        for (std::size_t i = 0; i < listeners.size(); ++i)
            if (pfds[i].revents & POLLIN)
                acceptOne(*listeners[i]);
    }
}

void
Server::Impl::acceptOne(serving::Listener &listener)
{
    const int fd = listener.acceptConnection();
    if (fd < 0)
        return;
    // Global connection limit: refuse with a parseable error line
    // instead of letting readers (one thread each) pile up.
    if (options.maxConnections != 0) {
        std::size_t active;
        {
            const std::lock_guard<std::mutex> guard(connectionsMutex);
            active = connections.size();
        }
        if (active >= options.maxConnections) {
            ++statConnRefused;
            const std::string line =
                errorResponse(
                    -1, format("connection limit (%zu) reached; "
                               "retry later",
                               options.maxConnections)) +
                "\n";
            ::send(fd, line.data(), line.size(), MSG_NOSIGNAL);
            ::close(fd);
            return;
        }
    }
    // Bounded sends: a client that stops reading makes send()
    // fail with EAGAIN after this long instead of blocking a
    // request worker indefinitely (see sendLineLocked).
    timeval send_timeout{};
    send_timeout.tv_sec = 10;
    ::setsockopt(fd, SOL_SOCKET, SO_SNDTIMEO, &send_timeout,
                 sizeof(send_timeout));
    auto connection = std::make_shared<Connection>();
    connection->fd = fd;
    connection->touch();
    ++statConnections;
    {
        const std::lock_guard<std::mutex> guard(connectionsMutex);
        connection->id = nextConnectionId++;
        reapFinishedReadersLocked();
        readerThreads.emplace(
            connection->id,
            std::thread(
                [this, connection] { readerLoop(connection); }));
        connections.push_back(connection);
    }
}

/** Close connections idle past the configured timeout.  A connection
 *  with in-flight work is never idle, however long its SAT race runs;
 *  shutting the socket down (not closing the fd) kicks the reader,
 *  which owns the ordinary teardown path. */
void
Server::Impl::sweepIdleConnections()
{
    if (options.idleTimeoutSeconds == 0)
        return;
    const auto now = std::chrono::steady_clock::now();
    const std::lock_guard<std::mutex> guard(connectionsMutex);
    for (const auto &connection : connections) {
        if (connection->inflight.load(std::memory_order_acquire) != 0)
            continue;
        const auto last = std::chrono::steady_clock::time_point(
            std::chrono::steady_clock::duration(
                connection->lastActivity.load(
                    std::memory_order_relaxed)));
        if (now - last >=
            std::chrono::seconds(options.idleTimeoutSeconds)) {
            connection->open.store(false, std::memory_order_release);
            ::shutdown(connection->fd, SHUT_RDWR);
        }
    }
}

/** Join reader threads whose connections already ended, so a
 *  long-lived daemon does not accumulate terminated-but-joinable
 *  threads (and their stacks) across many short connections.
 *  Caller holds connectionsMutex. */
void
Server::Impl::reapFinishedReadersLocked()
{
    for (const std::uint64_t id : finishedReaders) {
        const auto it = readerThreads.find(id);
        if (it != readerThreads.end()) {
            it->second.join(); // at most momentarily still running
            readerThreads.erase(it);
        }
    }
    finishedReaders.clear();
}

void
Server::Impl::readerLoop(std::shared_ptr<Connection> connection)
{
    std::string buffer;
    char chunk[4096];
    while (true) {
        const ssize_t n =
            ::read(connection->fd, chunk, sizeof(chunk));
        if (n < 0 && errno == EINTR)
            continue;
        if (n <= 0)
            break; // EOF, error, or shutdown() closed the socket
        connection->touch();
        buffer.append(chunk, static_cast<std::size_t>(n));
        std::size_t eol;
        while ((eol = buffer.find('\n')) != std::string::npos) {
            std::string line = buffer.substr(0, eol);
            buffer.erase(0, eol + 1);
            if (!line.empty() && line.back() == '\r')
                line.pop_back();
            if (!line.empty())
                handleLine(connection, line);
        }
        if (buffer.size() > kMaxLineBytes) {
            connection->sendLine(errorResponse(
                -1, "request line exceeds 64 MiB; closing"));
            ++statErrors;
            break;
        }
    }
    // The peer is gone (or the server is closing): fire the stop flag
    // of every request this connection still has in flight so the
    // pool stops burning conflicts on answers nobody will read.
    connection->open.store(false, std::memory_order_release);
    cancelConnection(connection->id);
    const std::lock_guard<std::mutex> guard(connectionsMutex);
    std::erase(connections, connection);
    finishedReaders.push_back(connection->id);
}

void
Server::Impl::handleLine(
    const std::shared_ptr<Connection> &connection,
    const std::string &line)
{
    Request request;
    try {
        request = parseRequest(line);
    } catch (const std::exception &e) {
        ++statErrors;
        connection->sendLine(errorResponse(-1, e.what()));
        return; // a bad frame never stops the service
    }
    switch (request.op) {
      case RequestOp::Verify: ++statOpVerify; break;
      case RequestOp::Cancel: ++statOpCancel; break;
      case RequestOp::Ping: ++statOpPing; break;
      case RequestOp::Stats: ++statOpStats; break;
      case RequestOp::Shutdown: ++statOpShutdown; break;
      case RequestOp::Auth: ++statOpAuth; break;
    }
    if (request.op == RequestOp::Auth) {
        if (options.authToken.empty() ||
            request.token == options.authToken) {
            connection->authed.store(true,
                                     std::memory_order_release);
            connection->sendLine(authResponse(request.id, true));
        } else {
            // Wrong token: say so, then close.  The reject never
            // reaches the admission queue.
            ++statAuthRejected;
            connection->sendLine(authResponse(request.id, false));
            connection->open.store(false, std::memory_order_release);
            ::shutdown(connection->fd, SHUT_RDWR);
        }
        return;
    }
    if (!options.authToken.empty() &&
        !connection->authed.load(std::memory_order_acquire)) {
        // Every other op on an unauthenticated connection is
        // rejected before admission; the connection stays open so
        // the client can still send the auth frame.
        ++statAuthRejected;
        connection->sendLine(errorResponse(
            request.id, "authentication required (send "
                        "{\"op\": \"auth\", \"token\": ...} first)"));
        return;
    }
    switch (request.op) {
      case RequestOp::Auth: // handled above
      case RequestOp::Ping:
        connection->sendLine(pongResponse(request.id));
        return;
      case RequestOp::Stats: {
        // Live observability (ROADMAP follow-on): the exit-line
        // counters on demand, plus queue depth and the scheduler's
        // per-band backlog so clients can see load before submitting.
        StatsSnapshot snapshot;
        snapshot.connections = statConnections.load();
        snapshot.requests = statRequests.load();
        snapshot.served = statServed.load();
        snapshot.cancelled = statCancelled.load();
        snapshot.rejected = statRejected.load();
        snapshot.errors = statErrors.load();
        snapshot.queueDepth = queue.size();
        snapshot.queueCapacity = queue.capacity();
        // The pool exists from start() on; readers only run after it.
        if (scheduler) {
            snapshot.satWorkers = scheduler->workers();
            snapshot.bands = scheduler->bandBacklog();
        }
        snapshot.uptimeSeconds =
            std::chrono::duration<double>(
                std::chrono::steady_clock::now() - startTime)
                .count();
        snapshot.opVerify = statOpVerify.load();
        snapshot.opCancel = statOpCancel.load();
        snapshot.opPing = statOpPing.load();
        snapshot.opStats = statOpStats.load();
        snapshot.opShutdown = statOpShutdown.load();
        snapshot.opAuth = statOpAuth.load();
        const auto fill = [](StatsSnapshot::Cache &dst,
                             const serving::CacheCounters &src) {
            dst.hits = src.hits;
            dst.misses = src.misses;
            dst.evictions = src.evictions;
            dst.entries = src.entries;
        };
        fill(snapshot.programCache, tier.programCounters());
        fill(snapshot.resultCache, tier.resultCounters());
        snapshot.warmVerifies = tier.warmVerifies();
        {
            const std::lock_guard<std::mutex> guard(connectionsMutex);
            snapshot.activeConnections = connections.size();
        }
        snapshot.connectionLimit = options.maxConnections;
        snapshot.connectionsRefused = statConnRefused.load();
        snapshot.authRejected = statAuthRejected.load();
        snapshot.analysisDischarged = statAnalysisDischarged.load();
        snapshot.analysisAffine = statAnalysisAffine.load();
        snapshot.sccMergedVars = statSccMergedVars.load();
        snapshot.probedFailed = statProbedFailed.load();
        snapshot.hyperBinaries = statHyperBinaries.load();
        snapshot.transitiveReduced = statTransitiveReduced.load();
        connection->sendLine(statsResponse(request.id, snapshot));
        return;
      }
      case RequestOp::Shutdown:
        connection->sendLine(byeResponse(request.id));
        requestStop();
        return;
      case RequestOp::Cancel: {
        std::shared_ptr<core::CancelSource> cancel;
        {
            const std::lock_guard<std::mutex> guard(inflightMutex);
            const auto it = inflight.find(
                {connection->id, request.target});
            if (it != inflight.end())
                cancel = it->second;
        }
        if (cancel)
            cancel->requestCancel();
        connection->sendLine(cancelledResponse(
            request.id, request.target, cancel != nullptr));
        return;
      }
      case RequestOp::Verify:
        break;
    }

    // Per-connection in-flight bound: one client cannot fill the
    // whole admission queue by itself.
    if (options.maxInflightPerConnection != 0 &&
        connection->inflight.load(std::memory_order_acquire) >=
            options.maxInflightPerConnection) {
        ++statRejected;
        connection->sendLine(errorResponse(
            request.id,
            format("too many in-flight requests on this connection "
                   "(limit %zu); retry later",
                   options.maxInflightPerConnection)));
        return;
    }

    QueuedRequest item;
    item.request = std::move(request);
    item.cancel = std::make_shared<core::CancelSource>();
    item.connection = connection;
    {
        // Register BEFORE admission so a cancel can hit a request
        // that is still waiting in the queue.  The inflight map is
        // daemon-global: never send (which can block on a stalled
        // peer for the whole send timeout) while holding its lock.
        bool duplicate;
        {
            const std::lock_guard<std::mutex> guard(inflightMutex);
            const auto key =
                std::make_pair(connection->id, item.request.id);
            duplicate =
                !inflight.emplace(key, item.cancel).second;
        }
        if (duplicate) {
            ++statErrors;
            connection->sendLine(errorResponse(
                item.request.id,
                "a request with this id is already in flight on "
                "this connection"));
            return;
        }
    }
    const std::int64_t id = item.request.id;
    // Admission and its ack happen under the connection's write lock:
    // a worker can pop the request the instant tryPush returns, and
    // its first qubit/result frame must not beat the `accepted` ack
    // onto the wire (SERVER_PROTOCOL.md's ordering guarantee).
    bool admitted;
    {
        const std::lock_guard<std::mutex> guard(
            connection->writeMutex);
        admitted = queue.tryPush(std::move(item));
        if (admitted) {
            ++statRequests;
            connection->inflight.fetch_add(
                1, std::memory_order_acq_rel);
            connection->sendLineLocked(acceptedResponse(id));
        }
    }
    if (!admitted) {
        dropInflight(connection->id, id);
        ++statRejected;
        connection->sendLine(errorResponse(
            id, queue.closed()
                    ? "server is shutting down"
                    : format("queue full (capacity %zu); retry later",
                             queue.capacity())));
    }
}

core::EngineOptions
Server::Impl::engineOptionsFor(const RequestOptions &request)
{
    core::EngineOptions base = options.engine;
    core::EngineOptions chosen = base;
    if (request.lane == "A") {
        chosen = core::EngineOptions::singleLane(
            core::VerifierOptions::laneA());
    } else if (request.lane == "B") {
        chosen = core::EngineOptions::singleLane(
            core::VerifierOptions::laneB());
    } else if (request.lane == "portfolio") {
        chosen = core::EngineOptions::portfolioAB();
    }
    // Server-wide policies survive a lane override.
    chosen.inprocessInterval = base.inprocessInterval;
    chosen.adaptiveLanes = base.adaptiveLanes;
    chosen.jobs = options.jobs;
    const bool want_cex = request.counterexampleSet
        ? request.counterexample
        : (!base.lanes.empty() &&
           base.lanes.front().wantCounterexample);
    const std::int64_t budget = request.budgetSet
        ? request.budget
        : (base.lanes.empty() ? -1
                              : base.lanes.front().conflictBudget);
    for (core::VerifierOptions &lane : chosen.lanes) {
        lane.wantCounterexample = want_cex;
        lane.conflictBudget = budget;
    }
    // Distinct band per request: the pool round-robins bands, so one
    // program's backlog cannot starve another's first race.
    chosen.fairnessBand =
        1 + (bandCounter.fetch_add(1, std::memory_order_relaxed) &
             0x3ff);
    return chosen;
}

void
Server::Impl::dropInflight(std::uint64_t connection_id,
                           std::int64_t id)
{
    const std::lock_guard<std::mutex> guard(inflightMutex);
    inflight.erase({connection_id, id});
}

void
Server::Impl::cancelConnection(std::uint64_t connection_id)
{
    std::vector<std::shared_ptr<core::CancelSource>> to_cancel;
    {
        const std::lock_guard<std::mutex> guard(inflightMutex);
        for (const auto &[key, cancel] : inflight)
            if (key.first == connection_id)
                to_cancel.push_back(cancel);
    }
    for (const auto &cancel : to_cancel)
        cancel->requestCancel();
}

void
Server::Impl::workerLoop()
{
    while (auto item = queue.pop())
        serveRequest(std::move(*item));
}

void
Server::Impl::serveRequest(QueuedRequest item)
{
    const std::shared_ptr<Connection> connection = item.connection;
    const Request &request = item.request;
    const std::string name =
        request.name.empty() ? format("request-%lld",
                                      static_cast<long long>(
                                          request.id))
                             : request.name;
    const auto finish = [&] {
        dropInflight(connection->id, request.id);
        connection->inflight.fetch_sub(1,
                                       std::memory_order_acq_rel);
        connection->touch();
    };
    // A request whose connection already died is moot.
    if (!connection->open.load(std::memory_order_acquire))
        item.cancel->requestCancel();
    if (item.cancel->cancelRequested()) {
        // Cancelled while still queued: settle without touching the
        // pool.
        finish();
        ++statCancelled;
        connection->sendLine(resultResponse(
            request.id, "cancelled", core::ProgramResult{}, name));
        return;
    }

    const core::EngineOptions engine_options =
        engineOptionsFor(request.options);
    const bool clean = request.options.cleanSet
        ? request.options.clean
        : options.checkCleanAncillas;
    const std::int64_t id = request.id;
    const auto &cancel = item.cancel;
    const core::ResultObserver observer =
        [&connection, &cancel, id](const core::QubitResult &r) {
            connection->sendLine(qubitResponse(id, r));
            // A send that timed out (stalled client) or failed (gone
            // client) closed the connection: stop burning the pool on
            // a program whose answers nobody will read.
            if (!connection->open.load(std::memory_order_acquire))
                cancel->requestCancel();
        };
    // The serving tier owns elaboration (hash-consed per source),
    // memoized verdicts and warm sessions; a result-cache hit replays
    // the stored qubit frames through the observer and never touches
    // the pool.  Elaboration of a MISS runs on this worker thread,
    // off the SAT pool, as before.
    serving::ServingTier::Outcome outcome;
    try {
        outcome = tier.verify(
            request.source, engine_options, clean,
            serving::ServingTier::optionsFingerprint(engine_options,
                                                     clean),
            observer, scheduler, item.cancel);
    } catch (const std::exception &e) {
        finish();
        ++statErrors;
        connection->sendLine(errorResponse(request.id, e.what()));
        return;
    }
    if (outcome.failed) {
        // A bad program fails ITS request; the server keeps serving.
        finish();
        ++statErrors;
        connection->sendLine(
            errorResponse(request.id, outcome.error));
        return;
    }
    finish();
    // Result-cache hits replay a stored report whose discharges were
    // counted when the report was produced; only fresh runs add.
    if (!outcome.fromResultCache &&
        outcome.result.analysisTotals.discharged > 0)
        statAnalysisDischarged += static_cast<std::uint64_t>(
            outcome.result.analysisTotals.discharged);
    if (!outcome.fromResultCache &&
        outcome.result.analysisTotals.affine > 0)
        statAnalysisAffine += static_cast<std::uint64_t>(
            outcome.result.analysisTotals.affine);
    if (!outcome.fromResultCache) {
        const sat::SolverStats &st = outcome.result.solverTotals;
        statSccMergedVars +=
            static_cast<std::uint64_t>(st.sccMergedVars);
        statProbedFailed +=
            static_cast<std::uint64_t>(st.probedFailed);
        statHyperBinaries +=
            static_cast<std::uint64_t>(st.hyperBinaries);
        statTransitiveReduced +=
            static_cast<std::uint64_t>(st.transitiveReduced);
    }
    const bool was_cancelled = item.cancel->cancelRequested();
    if (was_cancelled)
        ++statCancelled;
    else
        ++statServed;
    connection->sendLine(resultResponse(
        request.id, was_cancelled ? "cancelled" : "done",
        outcome.result, name));
}

void
Server::Impl::requestStop()
{
    stopRequested.store(true, std::memory_order_release);
    stopCv.notify_all();
}

Server::Server(ServerOptions options)
    : impl(std::make_unique<Impl>(std::move(options)))
{
    impl->createListeners();
}

Server::~Server()
{
    shutdown();
}

void
Server::start()
{
    if (impl->started.exchange(true))
        return;
    // The ONE process-wide pool: created before the first request,
    // alive until shutdown, so every request's sessions reuse warm
    // workers instead of paying pool startup.
    impl->scheduler =
        std::make_shared<core::Scheduler>(impl->options.jobs);
    unsigned workers = impl->options.concurrency;
    if (workers == 0)
        workers = 1;
    impl->workerThreads.reserve(workers);
    for (unsigned i = 0; i < workers; ++i)
        impl->workerThreads.emplace_back(
            [this] { impl->workerLoop(); });
    impl->acceptThread =
        std::thread([this] { impl->acceptLoop(); });
}

void
Server::run(const std::atomic<bool> *external_stop)
{
    start();
    std::unique_lock<std::mutex> lock(impl->lifecycleMutex);
    while (!impl->stopRequested.load(std::memory_order_acquire) &&
           !(external_stop &&
             external_stop->load(std::memory_order_acquire))) {
        impl->stopCv.wait_for(
            lock, std::chrono::milliseconds(100), [&] {
                return impl->stopRequested.load(
                    std::memory_order_acquire);
            });
    }
    lock.unlock();
    shutdown();
}

void
Server::shutdown()
{
    {
        const std::lock_guard<std::mutex> guard(impl->lifecycleMutex);
        if (impl->shutdownDone)
            return;
        impl->shutdownDone = true;
    }
    impl->requestStop();
    impl->stopping.store(true, std::memory_order_release);
    if (impl->acceptThread.joinable())
        impl->acceptThread.join();

    // Drain: refuse new admissions, let the workers finish every
    // admitted request and deliver its result, then disconnect.
    impl->queue.close();
    for (std::thread &t : impl->workerThreads)
        t.join();
    impl->workerThreads.clear();

    std::map<std::uint64_t, std::thread> readers;
    {
        const std::lock_guard<std::mutex> guard(
            impl->connectionsMutex);
        for (const auto &connection : impl->connections)
            ::shutdown(connection->fd, SHUT_RDWR);
        readers.swap(impl->readerThreads);
        impl->finishedReaders.clear();
    }
    for (auto &[id, thread] : readers)
        thread.join();

    for (const auto &listener : impl->listeners)
        listener->close();
}

bool
Server::stopRequested() const
{
    return impl->stopRequested.load(std::memory_order_acquire);
}

const std::string &
Server::socketPath() const
{
    return impl->options.socketPath;
}

std::string
Server::tcpEndpoint() const
{
    return impl->tcpEndpointStr;
}

Server::Counters
Server::counters() const
{
    Counters c;
    c.connections = impl->statConnections.load();
    c.requests = impl->statRequests.load();
    c.served = impl->statServed.load();
    c.cancelled = impl->statCancelled.load();
    c.rejected = impl->statRejected.load();
    c.errors = impl->statErrors.load();
    return c;
}

} // namespace qb::server
