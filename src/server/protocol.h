/**
 * @file
 * Wire protocol of the qborrow server: line-delimited JSON.
 *
 * Every frame - request or response - is one JSON object on one line,
 * terminated by '\n'.  Requests carry an `op` and a client-chosen
 * `id`; every response names the request it answers through the same
 * `id`, so a client may pipeline requests and match answers out of
 * order.  The full message catalogue with worked examples lives in
 * docs/SERVER_PROTOCOL.md.
 *
 * This header also hosts the minimal JSON reader the server (and the
 * `qborrow --connect` client) parse frames with: a strict
 * recursive-descent parser over an immutable value tree.  It exists
 * because the wire format needs PARSING, which the report emitter
 * never did; it covers exactly RFC 8259 - no comments, no trailing
 * commas - and rejects everything else with a located FatalError.
 */

#ifndef QB_SERVER_PROTOCOL_H
#define QB_SERVER_PROTOCOL_H

#include <cstdint>
#include <map>
#include <string>
#include <utility>
#include <vector>

#include "core/verifier.h"

namespace qb::server {

/** An immutable parsed JSON value. */
class JsonValue
{
  public:
    enum class Kind { Null, Bool, Number, String, Array, Object };

    /**
     * Parse one JSON document from @p text (trailing whitespace
     * allowed, trailing garbage rejected).
     * @throws FatalError with an offset-located message on malformed
     *         input.
     */
    static JsonValue parse(const std::string &text);

    Kind kind() const { return kind_; }
    bool isNull() const { return kind_ == Kind::Null; }

    /** Boolean value, or @p dflt when this is not a Bool. */
    bool asBool(bool dflt = false) const;
    /** Numeric value, or @p dflt when this is not a Number. */
    double asNumber(double dflt = 0.0) const;
    /** Numeric value truncated to integer, or @p dflt. */
    std::int64_t asInt(std::int64_t dflt = 0) const;
    /** String value; empty when this is not a String. */
    const std::string &asString() const;

    /** Object member @p key, or nullptr when absent / not an
     *  object. */
    const JsonValue *find(const std::string &key) const;
    /** Array elements; empty for non-arrays. */
    const std::vector<JsonValue> &items() const;

  private:
    friend class JsonParser;
    Kind kind_ = Kind::Null;
    bool bool_ = false;
    double number_ = 0.0;
    std::string string_;
    std::vector<JsonValue> items_;
    /** Object members in document order ({key, value}). */
    std::vector<std::pair<std::string, JsonValue>> members_;
};

/** Request verbs the server understands. */
enum class RequestOp {
    Verify,   ///< submit a program for verification
    Cancel,   ///< cancel an earlier verify on the same connection
    Ping,     ///< liveness probe
    Stats,    ///< service counters, queue depth, per-band backlog
    Shutdown, ///< ask the daemon to drain and exit
    Auth,     ///< present the connection token (TCP transport)
};

/**
 * One observability snapshot for the `stats` op: the service counters
 * that used to be visible only in the daemon's exit line, plus the
 * live load shape - admission-queue depth and the scheduler's
 * per-fairness-band backlog (one band per in-flight request stream,
 * so the band list shows which programs are waiting on SAT work).
 */
struct StatsSnapshot
{
    /** @name Monotonic service counters. @{ */
    std::uint64_t connections = 0;
    std::uint64_t requests = 0;
    std::uint64_t served = 0;
    std::uint64_t cancelled = 0;
    std::uint64_t rejected = 0;
    std::uint64_t errors = 0;
    /** @} */

    /** Admitted-but-unstarted requests right now. */
    std::size_t queueDepth = 0;
    std::size_t queueCapacity = 0;

    /** SAT worker threads in the shared pool. */
    unsigned satWorkers = 0;
    /** Queued runnable units per scheduler fairness band. */
    std::vector<std::pair<unsigned, std::size_t>> bands;

    /** @name Serving-tier additions (each a NEW JSON object in the
     *  stats frame; every pre-existing field keeps its place, so old
     *  clients parse new frames unchanged). @{ */

    /** Seconds since the server started. */
    double uptimeSeconds = 0.0;

    /** Requests seen per op (counted at parse time, whether or not
     *  they were admitted). */
    std::uint64_t opVerify = 0;
    std::uint64_t opCancel = 0;
    std::uint64_t opPing = 0;
    std::uint64_t opStats = 0;
    std::uint64_t opShutdown = 0;
    std::uint64_t opAuth = 0;

    /** One cache's counters (serving/cache.h mirrors). */
    struct Cache
    {
        std::uint64_t hits = 0;
        std::uint64_t misses = 0;
        std::uint64_t evictions = 0;
        std::size_t entries = 0;
    };
    Cache programCache;
    Cache resultCache;
    /** Verifications answered through reused warm sessions. */
    std::uint64_t warmVerifies = 0;

    /** Open connections right now / configured cap (0 = unlimited). */
    std::size_t activeConnections = 0;
    std::size_t connectionLimit = 0;
    /** Connections refused at accept time (limit reached). */
    std::uint64_t connectionsRefused = 0;
    /** Frames rejected before admission for missing/bad auth. */
    std::uint64_t authRejected = 0;
    /** Conditions discharged by the static analyzer across every
     *  non-cache-hit verify served (cache hits replay a stored
     *  report and add nothing). */
    std::uint64_t analysisDischarged = 0;
    /** Of those, conditions the GF(2)-affine dataflow pass proved
     *  (it additionally skips building the condition formula). */
    std::uint64_t analysisAffine = 0;
    /** Binary implication graph pass totals (solver inprocessing),
     *  summed over every non-cache-hit verify served: variables
     *  merged by SCC equivalence reduction, failed literals proven,
     *  hyper-binary resolvents harvested, and transitively redundant
     *  binaries removed. */
    std::uint64_t sccMergedVars = 0;
    std::uint64_t probedFailed = 0;
    std::uint64_t hyperBinaries = 0;
    std::uint64_t transitiveReduced = 0;
    /** @} */
};

/**
 * Per-request verification options: the subset of EngineOptions a
 * client may choose per program.  Fields left at their defaults defer
 * to the server's command-line configuration (pool size and
 * inprocessing interval are server-wide and not per-request).
 */
struct RequestOptions
{
    /** "A", "B" or "portfolio"; empty = server default. */
    std::string lane;
    /** Also check alloc'd clean ancillas; unset = server default. */
    bool clean = false;
    bool cleanSet = false;
    /** Extract counterexamples on Unsafe; unset = server default. */
    bool counterexample = true;
    bool counterexampleSet = false;
    /** Conflict budget per SAT call (-1 = unlimited); unset = server
     *  default. */
    std::int64_t budget = -1;
    bool budgetSet = false;
};

/** One parsed request frame. */
struct Request
{
    RequestOp op = RequestOp::Ping;
    /** Client-chosen correlation id (>= 0); echoed in responses. */
    std::int64_t id = -1;
    /** Verify: QBorrow program text. */
    std::string source;
    /** Verify: program name echoed in the report (optional). */
    std::string name;
    /** Cancel: the id of the verify request to cancel. */
    std::int64_t target = -1;
    /** Auth: the presented token. */
    std::string token;
    RequestOptions options;
};

/**
 * Parse one request line.
 * @throws FatalError on malformed JSON, unknown `op`, missing or
 *         ill-typed fields.
 */
Request parseRequest(const std::string &line);

/** @name Response frames (each returns one line WITHOUT the trailing
 *        '\n'; the writer appends it). @{ */
std::string acceptedResponse(std::int64_t id);
std::string errorResponse(std::int64_t id, const std::string &message);
std::string qubitResponse(std::int64_t id,
                          const core::QubitResult &result);
std::string resultResponse(std::int64_t id, const std::string &status,
                           const core::ProgramResult &result,
                           const std::string &program_name);
std::string cancelledResponse(std::int64_t id, std::int64_t target,
                              bool found);
std::string pongResponse(std::int64_t id);
std::string statsResponse(std::int64_t id,
                          const StatsSnapshot &snapshot);
std::string byeResponse(std::int64_t id);
/** `auth` acknowledgment; ok=false precedes the server closing the
 *  connection. */
std::string authResponse(std::int64_t id, bool ok);
/** @} */

} // namespace qb::server

#endif // QB_SERVER_PROTOCOL_H
