#include "server/request_queue.h"

namespace qb::server {

RequestQueue::RequestQueue(std::size_t capacity)
    : capacity_(capacity == 0 ? 1 : capacity)
{}

bool
RequestQueue::tryPush(QueuedRequest item)
{
    {
        const std::lock_guard<std::mutex> guard(mutex_);
        if (closed_ || items_.size() >= capacity_)
            return false;
        items_.push_back(std::move(item));
    }
    ready_.notify_one();
    return true;
}

std::optional<QueuedRequest>
RequestQueue::pop()
{
    std::unique_lock<std::mutex> lock(mutex_);
    ready_.wait(lock, [this] { return closed_ || !items_.empty(); });
    if (items_.empty())
        return std::nullopt; // closed and drained
    QueuedRequest item = std::move(items_.front());
    items_.pop_front();
    return item;
}

void
RequestQueue::close()
{
    {
        const std::lock_guard<std::mutex> guard(mutex_);
        closed_ = true;
    }
    ready_.notify_all();
}

std::size_t
RequestQueue::size() const
{
    const std::lock_guard<std::mutex> guard(mutex_);
    return items_.size();
}

bool
RequestQueue::closed() const
{
    const std::lock_guard<std::mutex> guard(mutex_);
    return closed_;
}

} // namespace qb::server
