#include "server/protocol.h"

#include <cctype>
#include <charconv>
#include <cstdlib>
#include <cstring>

#include "core/report.h"
#include "support/logging.h"
#include "support/strings.h"

namespace qb::server {

// --------------------------------------------------------------- parser

/** Strict RFC 8259 recursive-descent parser over one document. */
class JsonParser
{
  public:
    explicit JsonParser(const std::string &text) : text_(text) {}

    JsonValue
    document()
    {
        JsonValue v = value();
        skipWs();
        if (at_ != text_.size())
            fail("trailing garbage after JSON document");
        return v;
    }

  private:
    [[noreturn]] void
    fail(const std::string &what) const
    {
        fatal(format("JSON parse error at offset %zu: ", at_) + what);
    }

    void
    skipWs()
    {
        while (at_ < text_.size() &&
               (text_[at_] == ' ' || text_[at_] == '\t' ||
                text_[at_] == '\n' || text_[at_] == '\r'))
            ++at_;
    }

    char
    peek()
    {
        if (at_ >= text_.size())
            fail("unexpected end of input");
        return text_[at_];
    }

    void
    expect(char c)
    {
        if (peek() != c)
            fail(format("expected '%c'", c));
        ++at_;
    }

    bool
    consume(const char *word)
    {
        const std::size_t len = std::strlen(word);
        if (text_.compare(at_, len, word) != 0)
            return false;
        at_ += len;
        return true;
    }

    JsonValue
    value()
    {
        skipWs();
        switch (peek()) {
          case '{': return object();
          case '[': return array();
          case '"': return string();
          case 't':
            if (consume("true"))
                return boolean(true);
            fail("invalid literal");
          case 'f':
            if (consume("false"))
                return boolean(false);
            fail("invalid literal");
          case 'n':
            if (consume("null"))
                return JsonValue();
            fail("invalid literal");
          default:
            return number();
        }
    }

    static JsonValue
    boolean(bool b)
    {
        JsonValue v;
        v.kind_ = JsonValue::Kind::Bool;
        v.bool_ = b;
        return v;
    }

    JsonValue
    object()
    {
        expect('{');
        JsonValue v;
        v.kind_ = JsonValue::Kind::Object;
        skipWs();
        if (peek() == '}') {
            ++at_;
            return v;
        }
        while (true) {
            skipWs();
            if (peek() != '"')
                fail("expected object key string");
            JsonValue key = string();
            skipWs();
            expect(':');
            v.members_.emplace_back(std::move(key.string_), value());
            skipWs();
            const char c = peek();
            ++at_;
            if (c == '}')
                return v;
            if (c != ',')
                fail("expected ',' or '}' in object");
        }
    }

    JsonValue
    array()
    {
        expect('[');
        JsonValue v;
        v.kind_ = JsonValue::Kind::Array;
        skipWs();
        if (peek() == ']') {
            ++at_;
            return v;
        }
        while (true) {
            v.items_.push_back(value());
            skipWs();
            const char c = peek();
            ++at_;
            if (c == ']')
                return v;
            if (c != ',')
                fail("expected ',' or ']' in array");
        }
    }

    /** Append code point @p cp to @p out as UTF-8. */
    static void
    appendUtf8(std::string &out, std::uint32_t cp)
    {
        if (cp < 0x80) {
            out += static_cast<char>(cp);
        } else if (cp < 0x800) {
            out += static_cast<char>(0xc0 | (cp >> 6));
            out += static_cast<char>(0x80 | (cp & 0x3f));
        } else if (cp < 0x10000) {
            out += static_cast<char>(0xe0 | (cp >> 12));
            out += static_cast<char>(0x80 | ((cp >> 6) & 0x3f));
            out += static_cast<char>(0x80 | (cp & 0x3f));
        } else {
            out += static_cast<char>(0xf0 | (cp >> 18));
            out += static_cast<char>(0x80 | ((cp >> 12) & 0x3f));
            out += static_cast<char>(0x80 | ((cp >> 6) & 0x3f));
            out += static_cast<char>(0x80 | (cp & 0x3f));
        }
    }

    std::uint32_t
    hex4()
    {
        std::uint32_t cp = 0;
        for (int i = 0; i < 4; ++i) {
            const char c = peek();
            ++at_;
            cp <<= 4;
            if (c >= '0' && c <= '9')
                cp |= static_cast<std::uint32_t>(c - '0');
            else if (c >= 'a' && c <= 'f')
                cp |= static_cast<std::uint32_t>(c - 'a' + 10);
            else if (c >= 'A' && c <= 'F')
                cp |= static_cast<std::uint32_t>(c - 'A' + 10);
            else
                fail("invalid \\u escape");
        }
        return cp;
    }

    JsonValue
    string()
    {
        expect('"');
        JsonValue v;
        v.kind_ = JsonValue::Kind::String;
        std::string &out = v.string_;
        while (true) {
            if (at_ >= text_.size())
                fail("unterminated string");
            const char c = text_[at_++];
            if (c == '"')
                return v;
            if (static_cast<unsigned char>(c) < 0x20)
                fail("raw control character in string");
            if (c != '\\') {
                out += c;
                continue;
            }
            const char esc = peek();
            ++at_;
            switch (esc) {
              case '"':  out += '"'; break;
              case '\\': out += '\\'; break;
              case '/':  out += '/'; break;
              case 'b':  out += '\b'; break;
              case 'f':  out += '\f'; break;
              case 'n':  out += '\n'; break;
              case 'r':  out += '\r'; break;
              case 't':  out += '\t'; break;
              case 'u': {
                std::uint32_t cp = hex4();
                if (cp >= 0xd800 && cp <= 0xdbff) {
                    // High surrogate: a low surrogate must follow.
                    if (!consume("\\u"))
                        fail("unpaired surrogate");
                    const std::uint32_t lo = hex4();
                    if (lo < 0xdc00 || lo > 0xdfff)
                        fail("unpaired surrogate");
                    cp = 0x10000 + ((cp - 0xd800) << 10) +
                         (lo - 0xdc00);
                } else if (cp >= 0xdc00 && cp <= 0xdfff) {
                    fail("unpaired surrogate");
                }
                appendUtf8(out, cp);
                break;
              }
              default: fail("invalid escape");
            }
        }
    }

    JsonValue
    number()
    {
        const std::size_t start = at_;
        if (peek() == '-')
            ++at_;
        if (!std::isdigit(static_cast<unsigned char>(peek())))
            fail("invalid number");
        while (at_ < text_.size() &&
               (std::isdigit(
                    static_cast<unsigned char>(text_[at_])) ||
                text_[at_] == '.' || text_[at_] == 'e' ||
                text_[at_] == 'E' || text_[at_] == '+' ||
                text_[at_] == '-'))
            ++at_;
        JsonValue v;
        v.kind_ = JsonValue::Kind::Number;
        // std::from_chars is locale-independent, unlike strtod.
        const char *first = text_.data() + start;
        const char *last = text_.data() + at_;
        const auto [end, ec] =
            std::from_chars(first, last, v.number_);
        if (ec != std::errc() || end != last)
            fail("invalid number");
        return v;
    }

    const std::string &text_;
    std::size_t at_ = 0;
};

JsonValue
JsonValue::parse(const std::string &text)
{
    return JsonParser(text).document();
}

bool
JsonValue::asBool(bool dflt) const
{
    return kind_ == Kind::Bool ? bool_ : dflt;
}

double
JsonValue::asNumber(double dflt) const
{
    return kind_ == Kind::Number ? number_ : dflt;
}

std::int64_t
JsonValue::asInt(std::int64_t dflt) const
{
    if (kind_ != Kind::Number)
        return dflt;
    // Guard the float->int conversion: for wire input like 1e300 the
    // unchecked cast would be undefined behavior.  9.2e18 is the
    // largest double magnitude safely below INT64_MAX.
    if (!(number_ >= -9.2e18 && number_ <= 9.2e18))
        return dflt;
    return static_cast<std::int64_t>(number_);
}

const std::string &
JsonValue::asString() const
{
    static const std::string empty;
    return kind_ == Kind::String ? string_ : empty;
}

const JsonValue *
JsonValue::find(const std::string &key) const
{
    if (kind_ != Kind::Object)
        return nullptr;
    for (const auto &[k, v] : members_)
        if (k == key)
            return &v;
    return nullptr;
}

const std::vector<JsonValue> &
JsonValue::items() const
{
    return items_;
}

// ------------------------------------------------------------- requests

namespace {

RequestOp
parseOp(const std::string &op)
{
    if (op == "verify")
        return RequestOp::Verify;
    if (op == "cancel")
        return RequestOp::Cancel;
    if (op == "ping")
        return RequestOp::Ping;
    if (op == "stats")
        return RequestOp::Stats;
    if (op == "shutdown")
        return RequestOp::Shutdown;
    if (op == "auth")
        return RequestOp::Auth;
    fatal("unknown op '" + op + "'");
}

RequestOptions
parseOptions(const JsonValue *node)
{
    RequestOptions options;
    if (!node)
        return options;
    if (node->kind() != JsonValue::Kind::Object)
        fatal("'options' must be an object");
    if (const JsonValue *lane = node->find("lane")) {
        options.lane = lane->asString();
        if (options.lane != "A" && options.lane != "B" &&
            options.lane != "portfolio")
            fatal("options.lane must be \"A\", \"B\" or "
                  "\"portfolio\"");
    }
    if (const JsonValue *clean = node->find("clean")) {
        options.clean = clean->asBool();
        options.cleanSet = true;
    }
    if (const JsonValue *cex = node->find("counterexample")) {
        options.counterexample = cex->asBool(true);
        options.counterexampleSet = true;
    }
    if (const JsonValue *budget = node->find("budget")) {
        options.budget = budget->asInt(-1);
        options.budgetSet = true;
    }
    return options;
}

} // namespace

Request
parseRequest(const std::string &line)
{
    const JsonValue doc = JsonValue::parse(line);
    if (doc.kind() != JsonValue::Kind::Object)
        fatal("request must be a JSON object");
    const JsonValue *op = doc.find("op");
    if (!op || op->kind() != JsonValue::Kind::String)
        fatal("request is missing string field 'op'");
    Request request;
    request.op = parseOp(op->asString());
    if (const JsonValue *id = doc.find("id"))
        request.id = id->asInt(-1);
    if (request.id < 0)
        fatal("request is missing non-negative field 'id'");
    switch (request.op) {
      case RequestOp::Verify: {
        const JsonValue *source = doc.find("source");
        if (!source || source->kind() != JsonValue::Kind::String)
            fatal("verify request is missing string field 'source'");
        request.source = source->asString();
        if (const JsonValue *name = doc.find("name"))
            request.name = name->asString();
        request.options = parseOptions(doc.find("options"));
        break;
      }
      case RequestOp::Cancel: {
        const JsonValue *target = doc.find("target");
        if (!target || target->kind() != JsonValue::Kind::Number)
            fatal("cancel request is missing numeric field 'target'");
        request.target = target->asInt(-1);
        break;
      }
      case RequestOp::Auth: {
        const JsonValue *token = doc.find("token");
        if (!token || token->kind() != JsonValue::Kind::String)
            fatal("auth request is missing string field 'token'");
        request.token = token->asString();
        break;
      }
      case RequestOp::Ping:
      case RequestOp::Stats:
      case RequestOp::Shutdown:
        break;
    }
    return request;
}

// ------------------------------------------------------------ responses

std::string
acceptedResponse(std::int64_t id)
{
    return format("{\"type\": \"accepted\", \"id\": %lld}",
                  static_cast<long long>(id));
}

std::string
errorResponse(std::int64_t id, const std::string &message)
{
    if (id < 0) {
        return format("{\"type\": \"error\", \"id\": null, "
                      "\"message\": \"%s\"}",
                      jsonEscape(message).c_str());
    }
    return format("{\"type\": \"error\", \"id\": %lld, "
                  "\"message\": \"%s\"}",
                  static_cast<long long>(id),
                  jsonEscape(message).c_str());
}

std::string
qubitResponse(std::int64_t id, const core::QubitResult &result)
{
    return format("{\"type\": \"qubit\", \"id\": %lld, "
                  "\"qubit\": %s}",
                  static_cast<long long>(id),
                  core::toJson(result).c_str());
}

std::string
resultResponse(std::int64_t id, const std::string &status,
               const core::ProgramResult &result,
               const std::string &program_name)
{
    return format(
        "{\"type\": \"result\", \"id\": %lld, \"status\": \"%s\", "
        "\"report\": %s}",
        static_cast<long long>(id), jsonEscape(status).c_str(),
        core::toJsonCompact(result, program_name).c_str());
}

std::string
cancelledResponse(std::int64_t id, std::int64_t target, bool found)
{
    return format("{\"type\": \"cancel\", \"id\": %lld, "
                  "\"target\": %lld, \"found\": %s}",
                  static_cast<long long>(id),
                  static_cast<long long>(target),
                  found ? "true" : "false");
}

std::string
pongResponse(std::int64_t id)
{
    return format("{\"type\": \"pong\", \"id\": %lld}",
                  static_cast<long long>(id));
}

std::string
statsResponse(std::int64_t id, const StatsSnapshot &snapshot)
{
    std::string out = format(
        "{\"type\": \"stats\", \"id\": %lld, \"counters\": "
        "{\"connections\": %llu, \"requests\": %llu, "
        "\"served\": %llu, \"cancelled\": %llu, "
        "\"rejected\": %llu, \"errors\": %llu}",
        static_cast<long long>(id),
        static_cast<unsigned long long>(snapshot.connections),
        static_cast<unsigned long long>(snapshot.requests),
        static_cast<unsigned long long>(snapshot.served),
        static_cast<unsigned long long>(snapshot.cancelled),
        static_cast<unsigned long long>(snapshot.rejected),
        static_cast<unsigned long long>(snapshot.errors));
    out += format(", \"queue\": {\"depth\": %zu, \"capacity\": %zu}",
                  snapshot.queueDepth, snapshot.queueCapacity);
    out += format(", \"scheduler\": {\"workers\": %u, \"bands\": [",
                  snapshot.satWorkers);
    bool first = true;
    for (const auto &[band, backlog] : snapshot.bands) {
        if (!first)
            out += ", ";
        first = false;
        out += format("{\"band\": %u, \"backlog\": %zu}", band,
                      backlog);
    }
    out += "]}";
    out += format(", \"uptime_seconds\": %.3f",
                  snapshot.uptimeSeconds);
    out += format(
        ", \"ops\": {\"verify\": %llu, \"cancel\": %llu, "
        "\"ping\": %llu, \"stats\": %llu, \"shutdown\": %llu, "
        "\"auth\": %llu}",
        static_cast<unsigned long long>(snapshot.opVerify),
        static_cast<unsigned long long>(snapshot.opCancel),
        static_cast<unsigned long long>(snapshot.opPing),
        static_cast<unsigned long long>(snapshot.opStats),
        static_cast<unsigned long long>(snapshot.opShutdown),
        static_cast<unsigned long long>(snapshot.opAuth));
    const auto cacheJson = [](const StatsSnapshot::Cache &c) {
        return format("{\"hits\": %llu, \"misses\": %llu, "
                      "\"evictions\": %llu, \"entries\": %zu}",
                      static_cast<unsigned long long>(c.hits),
                      static_cast<unsigned long long>(c.misses),
                      static_cast<unsigned long long>(c.evictions),
                      c.entries);
    };
    out += ", \"caches\": {\"program\": " +
           cacheJson(snapshot.programCache) +
           ", \"result\": " + cacheJson(snapshot.resultCache) +
           format(", \"warm_verifies\": %llu}",
                  static_cast<unsigned long long>(
                      snapshot.warmVerifies));
    out += format(
        ", \"connections\": {\"active\": %zu, \"limit\": %zu, "
        "\"refused\": %llu, \"auth_rejected\": %llu}",
        snapshot.activeConnections, snapshot.connectionLimit,
        static_cast<unsigned long long>(snapshot.connectionsRefused),
        static_cast<unsigned long long>(snapshot.authRejected));
    out += format(
        ", \"analysis\": {\"discharged\": %llu, \"affine\": %llu}",
        static_cast<unsigned long long>(snapshot.analysisDischarged),
        static_cast<unsigned long long>(snapshot.analysisAffine));
    out += format(
        ", \"binary_graph\": {\"scc_merged_vars\": %llu, "
        "\"probed_failed\": %llu, \"hyper_binaries\": %llu, "
        "\"transitive_reduced\": %llu}",
        static_cast<unsigned long long>(snapshot.sccMergedVars),
        static_cast<unsigned long long>(snapshot.probedFailed),
        static_cast<unsigned long long>(snapshot.hyperBinaries),
        static_cast<unsigned long long>(snapshot.transitiveReduced));
    out += '}';
    return out;
}

std::string
byeResponse(std::int64_t id)
{
    return format("{\"type\": \"bye\", \"id\": %lld}",
                  static_cast<long long>(id));
}

std::string
authResponse(std::int64_t id, bool ok)
{
    return format("{\"type\": \"auth\", \"id\": %lld, \"ok\": %s}",
                  static_cast<long long>(id), ok ? "true" : "false");
}

} // namespace qb::server
