/**
 * @file
 * qbfuzz: the differential fuzzing harness (support/fuzz.h) as a CLI.
 *
 * One invocation is one campaign: `qbfuzz --seed 7 --qbr 500 --cnf
 * 500 --jobs 4 --out fuzz-out` generates the seeded corpus, decides
 * every case along independent paths (both solver presets + model
 * validation + brute force for CNF; both verification lanes + the
 * brute-force oracle for qbr programs), shrinks any disagreement to a
 * minimal reproducer in --out, and prints a summary.  Exit codes:
 * 0 = every case agreed, 1 = at least one disagreement (reproducers
 * written), 2 = usage error.  The corpus and every verdict are
 * deterministic in --seed alone - --jobs changes wall-clock time,
 * never bytes - so a CI failure replays locally from the seed in the
 * log.  --inject-cnf-bug turns on the built-in solver sabotage
 * (dropping one clause from the differential lane) and is how the
 * harness proves it would notice a real bug.
 */

#include <cstdio>
#include <cstdlib>
#include <string>
#include <thread>

#include "support/fuzz.h"
#include "support/logging.h"

namespace {

[[nodiscard]] int
usage(const char *argv0)
{
    std::fprintf(
        stderr,
        "usage: %s [options]\n"
        "  --seed N               campaign seed (default 1)\n"
        "  --qbr N                random program cases (default 250)\n"
        "  --cnf N                random CNF cases (default 250)\n"
        "  --analysis N           analysis-on/off differential "
        "cases (default 250)\n"
        "  --jobs N               worker threads; 0 = hardware "
        "(default 1)\n"
        "  --out DIR              write shrunk reproducers here "
        "(must exist)\n"
        "  --max-vars N           CNF generator variable cap "
        "(default 16)\n"
        "  --ratio R              CNF clauses-per-variable "
        "(default 4.2)\n"
        "  --binary-prob P        binary-clause probability "
        "(default 0.45)\n"
        "  --brute-max N          brute-force CNFs up to N vars "
        "(default 12)\n"
        "  --max-disagreements N  stop shrinking after N failures "
        "(default 4)\n"
        "  --inject-cnf-bug       sabotage one lane (harness "
        "self-test)\n",
        argv0);
    return 2;
}

} // namespace

int
main(int argc, char **argv)
{
    qb::fuzz::FuzzOptions options;
    try {
        for (int i = 1; i < argc; ++i) {
            const std::string arg = argv[i];
            const auto next = [&]() -> const char * {
                if (i + 1 >= argc)
                    throw std::invalid_argument(
                        "missing value for " + arg);
                return argv[++i];
            };
            if (arg == "--seed")
                options.seed = std::strtoull(next(), nullptr, 10);
            else if (arg == "--qbr")
                options.qbrCases =
                    std::strtoull(next(), nullptr, 10);
            else if (arg == "--cnf")
                options.cnfCases =
                    std::strtoull(next(), nullptr, 10);
            else if (arg == "--analysis")
                options.analysisCases =
                    std::strtoull(next(), nullptr, 10);
            else if (arg == "--jobs")
                options.jobs = static_cast<unsigned>(
                    std::strtoul(next(), nullptr, 10));
            else if (arg == "--out")
                options.reproducerDir = next();
            else if (arg == "--max-vars")
                options.cnf.maxVars = static_cast<qb::sat::Var>(
                    std::strtol(next(), nullptr, 10));
            else if (arg == "--ratio")
                options.cnf.clauseVarRatio =
                    std::strtod(next(), nullptr);
            else if (arg == "--binary-prob")
                options.cnf.binaryProb =
                    std::strtod(next(), nullptr);
            else if (arg == "--brute-max")
                options.bruteForceMaxVars =
                    static_cast<qb::sat::Var>(
                        std::strtol(next(), nullptr, 10));
            else if (arg == "--max-disagreements")
                options.maxDisagreements =
                    std::strtoull(next(), nullptr, 10);
            else if (arg == "--inject-cnf-bug")
                options.injectCnfBug = true;
            else
                return usage(argv[0]);
        }
    } catch (const std::invalid_argument &e) {
        std::fprintf(stderr, "error: %s\n", e.what());
        return usage(argv[0]);
    }
    if (options.jobs == 0)
        options.jobs =
            std::max(1u, std::thread::hardware_concurrency());
    if (options.cnf.maxVars < options.cnf.minVars) {
        std::fprintf(stderr,
                     "error: --max-vars must be at least %d\n",
                     options.cnf.minVars);
        return 2;
    }

    std::printf(
        "c qbfuzz seed=%llu qbr=%zu cnf=%zu analysis=%zu jobs=%u%s\n",
        static_cast<unsigned long long>(options.seed),
        options.qbrCases, options.cnfCases, options.analysisCases,
        options.jobs, options.injectCnfBug ? " inject-cnf-bug" : "");

    try {
        const qb::fuzz::FuzzReport report = qb::fuzz::runFuzz(options);
        std::printf("c corpus digest %016llx\n",
                    static_cast<unsigned long long>(
                        report.corpusDigest));
        std::printf("c cnf verdicts: %zu sat, %zu unsat\n",
                    report.satVerdicts, report.unsatVerdicts);
        std::printf("c qbr/analysis qubits: %zu safe, %zu unsafe\n",
                    report.safeQubits, report.unsafeQubits);
        for (const auto &d : report.disagreements) {
            std::printf("d %s case %zu (seed 0x%llx): %s\n",
                        qb::fuzz::caseKindName(d.kind), d.index,
                        static_cast<unsigned long long>(d.caseSeed),
                        d.detail.c_str());
            if (!d.reproducerPath.empty())
                std::printf("d   reproducer: %s\n",
                            d.reproducerPath.c_str());
        }
        if (!report.ok()) {
            std::printf("c FAIL: %zu disagreement(s)\n",
                        report.disagreements.size());
            return 1;
        }
        std::printf("c PASS: %zu cases, no disagreements\n",
                    options.qbrCases + options.cnfCases +
                        options.analysisCases);
        return 0;
    } catch (const qb::FatalError &e) {
        std::fprintf(stderr, "error: %s\n", e.what());
        return 2;
    } catch (const std::exception &e) {
        std::fprintf(stderr, "error: %s\n", e.what());
        return 2;
    }
}
