/**
 * @file
 * The qborrow command-line verifier, mirroring the artifact binary of
 * the paper (Section 10.2: `./qborrow ../examples/adder.qbr`).
 *
 * Reads a QBorrow program, elaborates it, and verifies the safe
 * uncomputation of every `borrow`-introduced dirty qubit over its
 * borrow...release lifetime through a VerificationEngine session:
 * qubits sharing a lifetime share one formula arena and one
 * incremental solver per lane, and `--portfolio` races both lanes per
 * SAT query.  Exit status: 0 when all dirty qubits are safe, 1 when
 * any is unsafe or undecided, 2 on usage or input errors.
 */

#include <cstdio>
#include <cstring>
#include <fstream>
#include <sstream>
#include <string>

#include "core/engine.h"
#include "core/report.h"
#include "core/verifier.h"
#include "lang/elaborate.h"
#include "support/logging.h"

namespace {

void
usage(const char *argv0)
{
    std::fprintf(
        stderr,
        "usage: %s [options] program.qbr\n"
        "\n"
        "Verify safe uncomputation of every borrowed dirty qubit.\n"
        "\n"
        "options:\n"
        "  --lane A|B        solver lane (default A; see docs)\n"
        "  --portfolio       race both lanes per query, first wins\n"
        "  --jobs N          scheduler worker threads (default: all\n"
        "                    hardware threads); without --budget,\n"
        "                    verdicts and counterexamples are\n"
        "                    identical for any N\n"
        "  --clean           also check alloc'd clean ancillas\n"
        "  --json            emit a machine-readable JSON report\n"
        "  --quiet           only print the summary line\n"
        "  --dump-circuit    print the elaborated gate list\n"
        "  --no-cex          skip counterexample extraction\n"
        "  --budget N        conflict budget per SAT call\n"
        "  --inprocess N     persistent lanes vivify/subsume their\n"
        "                    clause DB every N queries (default 16,\n"
        "                    0 disables)\n",
        argv0);
}

std::string
readFile(const std::string &path)
{
    std::ifstream in(path);
    if (!in)
        qb::fatal("cannot open '" + path + "'");
    std::ostringstream out;
    out << in.rdbuf();
    return out.str();
}

void
printQubitLine(const qb::core::QubitResult &r)
{
    std::printf("  %-10s %s", r.name.c_str(),
                qb::core::verdictName(r.verdict));
    if (r.verdict == qb::core::Verdict::Unsafe) {
        std::printf(" (%s restoration violated)",
                    r.failed == qb::core::FailedCondition::
                                    ZeroRestoration
                        ? "|0>"
                        : "|+>");
    }
    if (r.lane >= 0)
        std::printf(" [lane %c]", 'A' + r.lane);
    std::printf("\n");
    if (r.counterexample) {
        std::printf("    counterexample input:");
        for (bool b : *r.counterexample)
            std::printf(" %d", b ? 1 : 0);
        std::printf("\n");
    }
}

} // namespace

int
main(int argc, char **argv)
{
    std::string path;
    std::string lane = "A";
    bool quiet = false;
    bool dump = false;
    bool portfolio = false;
    bool clean = false;
    bool json = false;
    bool want_cex = true;
    std::int64_t budget = -1;
    long jobs = 0;
    long inprocess = 16;
    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        if (arg == "--quiet") {
            quiet = true;
        } else if (arg == "--dump-circuit") {
            dump = true;
        } else if (arg == "--no-cex") {
            want_cex = false;
        } else if (arg == "--portfolio") {
            portfolio = true;
        } else if (arg == "--clean") {
            clean = true;
        } else if (arg == "--json") {
            json = true;
        } else if (arg == "--lane" && i + 1 < argc) {
            lane = argv[++i];
            if (lane != "A" && lane != "B") {
                usage(argv[0]);
                return 2;
            }
        } else if (arg == "--budget" && i + 1 < argc) {
            budget = std::atoll(argv[++i]);
        } else if (arg == "--jobs" && i + 1 < argc) {
            jobs = std::atol(argv[++i]);
            if (jobs < 1) {
                usage(argv[0]);
                return 2;
            }
        } else if (arg == "--inprocess" && i + 1 < argc) {
            inprocess = std::atol(argv[++i]);
            if (inprocess < 0) {
                usage(argv[0]);
                return 2;
            }
        } else if (!arg.empty() && arg[0] == '-') {
            usage(argv[0]);
            return 2;
        } else if (path.empty()) {
            path = arg;
        } else {
            usage(argv[0]);
            return 2;
        }
    }
    if (path.empty()) {
        usage(argv[0]);
        return 2;
    }

    qb::core::EngineOptions options = portfolio
        ? qb::core::EngineOptions::portfolioAB()
        : qb::core::EngineOptions::singleLane(
              lane == "A" ? qb::core::VerifierOptions::laneA()
                          : qb::core::VerifierOptions::laneB());
    options.jobs = static_cast<unsigned>(jobs);
    options.inprocessInterval = static_cast<unsigned>(inprocess);
    for (qb::core::VerifierOptions &lane_options : options.lanes) {
        lane_options.wantCounterexample = want_cex;
        lane_options.conflictBudget = budget;
    }

    try {
        const std::string source = readFile(path);
        const auto program = qb::lang::elaborateSource(source);
        if (dump)
            std::printf("%s", program.circuit.toString().c_str());
        if (!quiet && !json) {
            std::printf("%s: %u qubits, %zu gates\n", path.c_str(),
                        program.circuit.numQubits(),
                        program.circuit.size());
        }
        // Stream per-qubit lines as the engine produces them.
        qb::core::ResultObserver observer;
        if (!quiet && !json)
            observer = printQubitLine;
        const auto result =
            qb::core::verifyAll(program, options, observer, clean);
        if (json) {
            std::printf("%s", qb::core::toJson(result, path).c_str());
        } else {
            std::printf("%s\n", result.summary().c_str());
        }
        return result.allSafe() ? 0 : 1;
    } catch (const qb::FatalError &e) {
        std::fprintf(stderr, "error: %s\n", e.what());
        return 2;
    } catch (const std::exception &e) {
        // Library preconditions (std::invalid_argument from the
        // generators and friends) surface as clean CLI errors, not
        // crashes.
        std::fprintf(stderr, "error: %s\n", e.what());
        return 2;
    }
}
