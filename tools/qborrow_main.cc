/**
 * @file
 * The qborrow command-line verifier, mirroring the artifact binary of
 * the paper (Section 10.2: `./qborrow ../examples/adder.qbr`).
 *
 * Reads a QBorrow program, elaborates it, and verifies the safe
 * uncomputation of every `borrow`-introduced dirty qubit over its
 * borrow...release lifetime.  Exit status: 0 when all dirty qubits
 * are safe, 1 when any is unsafe or undecided, 2 on usage or input
 * errors.
 */

#include <cstdio>
#include <cstring>
#include <fstream>
#include <sstream>
#include <string>

#include "core/verifier.h"
#include "lang/elaborate.h"
#include "support/logging.h"

namespace {

void
usage(const char *argv0)
{
    std::fprintf(
        stderr,
        "usage: %s [options] program.qbr\n"
        "\n"
        "Verify safe uncomputation of every borrowed dirty qubit.\n"
        "\n"
        "options:\n"
        "  --lane A|B        solver lane (default A; see docs)\n"
        "  --quiet           only print the summary line\n"
        "  --dump-circuit    print the elaborated gate list\n"
        "  --no-cex          skip counterexample extraction\n"
        "  --budget N        conflict budget per SAT call\n",
        argv0);
}

std::string
readFile(const std::string &path)
{
    std::ifstream in(path);
    if (!in)
        qb::fatal("cannot open '" + path + "'");
    std::ostringstream out;
    out << in.rdbuf();
    return out.str();
}

} // namespace

int
main(int argc, char **argv)
{
    std::string path;
    bool quiet = false;
    bool dump = false;
    qb::core::VerifierOptions options =
        qb::core::VerifierOptions::laneA();
    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        if (arg == "--quiet") {
            quiet = true;
        } else if (arg == "--dump-circuit") {
            dump = true;
        } else if (arg == "--no-cex") {
            options.wantCounterexample = false;
        } else if (arg == "--lane" && i + 1 < argc) {
            const std::string lane = argv[++i];
            const bool want_cex = options.wantCounterexample;
            if (lane == "A") {
                options = qb::core::VerifierOptions::laneA();
            } else if (lane == "B") {
                options = qb::core::VerifierOptions::laneB();
            } else {
                usage(argv[0]);
                return 2;
            }
            options.wantCounterexample = want_cex;
        } else if (arg == "--budget" && i + 1 < argc) {
            options.conflictBudget = std::atoll(argv[++i]);
        } else if (!arg.empty() && arg[0] == '-') {
            usage(argv[0]);
            return 2;
        } else if (path.empty()) {
            path = arg;
        } else {
            usage(argv[0]);
            return 2;
        }
    }
    if (path.empty()) {
        usage(argv[0]);
        return 2;
    }

    try {
        const std::string source = readFile(path);
        const auto program = qb::lang::elaborateSource(source);
        if (dump)
            std::printf("%s", program.circuit.toString().c_str());
        if (!quiet) {
            std::printf("%s: %u qubits, %zu gates\n", path.c_str(),
                        program.circuit.numQubits(),
                        program.circuit.size());
        }
        const auto result =
            qb::core::verifyProgram(program, options);
        if (!quiet) {
            for (const auto &r : result.qubits) {
                std::printf("  %-10s %s", r.name.c_str(),
                            qb::core::verdictName(r.verdict));
                if (r.verdict == qb::core::Verdict::Unsafe) {
                    std::printf(
                        " (%s restoration violated)",
                        r.failed ==
                                qb::core::FailedCondition::
                                    ZeroRestoration
                            ? "|0>"
                            : "|+>");
                }
                std::printf("\n");
                if (r.counterexample) {
                    std::printf("    counterexample input:");
                    for (bool b : *r.counterexample)
                        std::printf(" %d", b ? 1 : 0);
                    std::printf("\n");
                }
            }
        }
        std::printf("%s\n", result.summary().c_str());
        return result.allSafe() ? 0 : 1;
    } catch (const qb::FatalError &e) {
        std::fprintf(stderr, "error: %s\n", e.what());
        return 2;
    }
}
