/**
 * @file
 * The qborrow command-line verifier, mirroring the artifact binary of
 * the paper (Section 10.2: `./qborrow ../examples/adder.qbr`).
 *
 * Three modes share one flag surface:
 *
 *   - LOCAL (default): read a QBorrow program, elaborate it, and
 *     verify the safe uncomputation of every `borrow`-introduced dirty
 *     qubit through a VerificationEngine session;
 *   - SERVER (`--serve <socket>`): run as a long-lived daemon that
 *     accepts many programs over a Unix domain socket and feeds them
 *     all through one process-wide scheduler pool (src/server/);
 *   - CLIENT (`--connect <socket>`): submit one program to a running
 *     daemon and print the streamed results, with the same text/JSON
 *     output shapes and exit codes as a local run.
 *
 * Exit status: 0 when all checked qubits are safe, 1 when any is
 * unsafe or undecided (including a cancelled request), 2 on usage,
 * input, socket or protocol errors.
 */

#include <atomic>
#include <cerrno>
#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <sstream>
#include <string>

#include <netdb.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include "analysis/lint.h"
#include "core/engine.h"
#include "core/report.h"
#include "core/verifier.h"
#include "lang/elaborate.h"
#include "server/protocol.h"
#include "server/server.h"
#include "support/logging.h"
#include "support/strings.h"

namespace {

void
usage(const char *argv0)
{
    std::fprintf(
        stderr,
        "usage: %s [options] program.qbr\n"
        "       %s --serve <socket> [--serve-tcp host:port] "
        "[options]\n"
        "       %s --connect <socket> [options] program.qbr\n"
        "       %s --connect <socket> --shutdown | --stats\n"
        "\n"
        "Verify safe uncomputation of every borrowed dirty qubit.\n"
        "\n"
        "options:\n"
        "  --lane A|B        solver lane (default A; see docs)\n"
        "  --portfolio       race both lanes per query, first wins\n"
        "  --adaptive-lanes  track per-lane-family win rates and\n"
        "                    seed each race with the likely winner\n"
        "                    (portfolio mode; verdicts unchanged)\n"
        "  --jobs N          scheduler worker threads (default: all\n"
        "                    hardware threads); without --budget,\n"
        "                    verdicts and counterexamples are\n"
        "                    identical for any N\n"
        "  --clean           also check alloc'd clean ancillas\n"
        "  --lint            lint only: print source-located\n"
        "                    diagnostics and metrics, skip\n"
        "                    verification; exit 1 iff any error\n"
        "  --no-lint         skip the lint pass that otherwise runs\n"
        "                    before local verification\n"
        "  --analysis SPEC   static condition dischargers: 'all'\n"
        "                    (default), 'off', or a comma list of\n"
        "                    support,mirror,affine,permutation\n"
        "  --analysis-window N   qubit-window bound of the\n"
        "                    permutation discharger (default 10)\n"
        "  --json            emit a machine-readable JSON report\n"
        "  --quiet           only print the summary line\n"
        "  --dump-circuit    print the elaborated gate list\n"
        "  --no-cex          skip counterexample extraction\n"
        "  --budget N        conflict budget per SAT call\n"
        "  --inprocess N     persistent lanes vivify/subsume their\n"
        "                    clause DB every N queries (default 16,\n"
        "                    0 disables)\n"
        "  --binary-analysis / --no-binary-analysis\n"
        "                    binary implication graph passes inside\n"
        "                    inprocessing: SCC equivalence merging,\n"
        "                    failed-literal probing, transitive\n"
        "                    reduction (default on; verdicts and\n"
        "                    counterexamples are unchanged either\n"
        "                    way)\n"
        "\n"
        "server mode (--serve / --serve-tcp):\n"
        "  --serve PATH      run as a daemon on Unix socket PATH;\n"
        "                    the other options become the server's\n"
        "                    per-request defaults\n"
        "  --serve-tcp H:P   also (or only) listen on TCP host:port\n"
        "                    (port 0 binds an ephemeral port and\n"
        "                    prints it)\n"
        "  --auth-token T    require clients to authenticate with\n"
        "                    token T before any other op (default:\n"
        "                    $QB_AUTH_TOKEN; empty = no auth)\n"
        "  --parallel N      programs verified concurrently\n"
        "                    (default 2)\n"
        "  --queue N         admission queue bound; further requests\n"
        "                    are refused with 'queue full'\n"
        "                    (default 16)\n"
        "  --max-connections N   open connections allowed at once\n"
        "                    (default 0 = unlimited)\n"
        "  --max-inflight N  verify requests in flight per\n"
        "                    connection (default 0 = unlimited)\n"
        "  --idle-timeout S  close connections idle for S seconds\n"
        "                    (default 0 = never)\n"
        "  --program-cache N hash-consed programs kept warm\n"
        "                    (default 64, 0 disables)\n"
        "  --result-cache N  memoized verdicts kept (default 256,\n"
        "                    0 disables)\n"
        "\n"
        "client mode (--connect / --connect-tcp):\n"
        "  --connect PATH    submit the program to the daemon at\n"
        "                    PATH instead of verifying locally\n"
        "  --connect-tcp H:P connect to a TCP daemon at host:port\n"
        "  --token T         authenticate with token T (default:\n"
        "                    $QB_AUTH_TOKEN)\n"
        "  --stats           print the daemon's stats frame and exit\n"
        "  --shutdown        ask the daemon to drain and exit\n"
        "\n"
        "See docs/CLI.md and docs/SERVER_PROTOCOL.md.\n",
        argv0, argv0, argv0, argv0);
}

std::string
readFile(const std::string &path)
{
    std::ifstream in(path);
    if (!in)
        qb::fatal("cannot open '" + path + "'");
    std::ostringstream out;
    out << in.rdbuf();
    return out.str();
}

/** Everything the flag parser can express, for all three modes. */
struct CliOptions
{
    std::string path;
    std::string lane = "A";
    std::string servePath;
    std::string serveTcp;
    std::string connectPath;
    std::string connectTcp;
    std::string token;
    bool tokenSet = false;
    bool quiet = false;
    bool dump = false;
    bool lint = false;
    bool noLint = false;
    std::string analysisSpec;
    long analysisWindow = -1;
    bool portfolio = false;
    bool adaptive = false;
    bool clean = false;
    bool json = false;
    bool want_cex = true;
    bool shutdown_server = false;
    bool stats = false;
    std::int64_t budget = -1;
    long jobs = 0;
    long inprocess = 16;
    bool binaryAnalysis = true;
    long parallel = 2;
    long queue = 16;
    long maxConnections = 0;
    long maxInflight = 0;
    long idleTimeout = 0;
    long programCache = 64;
    long resultCache = 256;
};

/** --auth-token / --token when given, else $QB_AUTH_TOKEN, else
 *  empty. */
std::string
resolveToken(const CliOptions &cli)
{
    if (cli.tokenSet)
        return cli.token;
    const char *env = std::getenv("QB_AUTH_TOKEN");
    return env ? env : "";
}

qb::analysis::AnalysisOptions
analysisOptionsFor(const CliOptions &cli)
{
    qb::analysis::AnalysisOptions analysis;
    if (cli.analysisSpec == "off") {
        analysis = qb::analysis::AnalysisOptions::none();
    } else if (!cli.analysisSpec.empty() &&
               cli.analysisSpec != "all") {
        analysis = qb::analysis::AnalysisOptions::none();
        std::size_t start = 0;
        while (start <= cli.analysisSpec.size()) {
            std::size_t comma = cli.analysisSpec.find(',', start);
            if (comma == std::string::npos)
                comma = cli.analysisSpec.size();
            const std::string pass =
                cli.analysisSpec.substr(start, comma - start);
            if (pass == "support")
                analysis.support = true;
            else if (pass == "mirror")
                analysis.mirror = true;
            else if (pass == "affine")
                analysis.affine = true;
            else if (pass == "permutation")
                analysis.permutation = true;
            else
                qb::fatal("unknown analysis pass '" + pass +
                          "' (expected support, mirror, affine or "
                          "permutation)");
            start = comma + 1;
        }
    }
    if (cli.analysisWindow >= 0)
        analysis.permutationWindow =
            static_cast<unsigned>(cli.analysisWindow);
    return analysis;
}

qb::core::EngineOptions
engineOptionsFor(const CliOptions &cli)
{
    qb::core::EngineOptions options = cli.portfolio
        ? qb::core::EngineOptions::portfolioAB()
        : qb::core::EngineOptions::singleLane(
              cli.lane == "A" ? qb::core::VerifierOptions::laneA()
                              : qb::core::VerifierOptions::laneB());
    options.jobs = static_cast<unsigned>(cli.jobs);
    options.inprocessInterval = static_cast<unsigned>(cli.inprocess);
    options.binaryAnalysis = cli.binaryAnalysis;
    options.adaptiveLanes = cli.adaptive;
    options.analysis = analysisOptionsFor(cli);
    for (qb::core::VerifierOptions &lane_options : options.lanes) {
        lane_options.wantCounterexample = cli.want_cex;
        lane_options.conflictBudget = cli.budget;
    }
    return options;
}

void
printQubitLine(const qb::core::QubitResult &r)
{
    std::printf("  %-10s %s", r.name.c_str(),
                qb::core::verdictName(r.verdict));
    if (r.verdict == qb::core::Verdict::Unsafe) {
        std::printf(" (%s restoration violated)",
                    r.failed == qb::core::FailedCondition::
                                    ZeroRestoration
                        ? "|0>"
                        : "|+>");
    }
    if (r.lane >= 0)
        std::printf(" [lane %c]", 'A' + r.lane);
    std::printf("\n");
    if (r.counterexample) {
        std::printf("    counterexample input:");
        for (bool b : *r.counterexample)
            std::printf(" %d", b ? 1 : 0);
        std::printf("\n");
    }
}

// ------------------------------------------------------------- lint mode

qb::analysis::LintOptions
lintOptionsFor(const CliOptions &cli)
{
    qb::analysis::LintOptions options;
    options.permutationWindow =
        analysisOptionsFor(cli).permutationWindow;
    return options;
}

int
runLint(const CliOptions &cli)
{
    const auto result = qb::analysis::lintSource(readFile(cli.path),
                                                 lintOptionsFor(cli));
    std::printf("%s",
                cli.json
                    ? qb::analysis::lintToJson(result, cli.path)
                          .c_str()
                    : qb::analysis::renderLintText(result, cli.path)
                          .c_str());
    return result.hasErrors() ? 1 : 0;
}

// ------------------------------------------------------------ local mode

int
runLocal(const CliOptions &cli)
{
    const qb::core::EngineOptions options = engineOptionsFor(cli);
    const std::string source = readFile(cli.path);
    // Lint-before-verify (opt out with --no-lint): diagnostics go to
    // stderr so stdout stays the verification report.
    if (!cli.noLint && !cli.quiet && !cli.json) {
        const auto lint =
            qb::analysis::lintSource(source, lintOptionsFor(cli));
        for (const auto &d : lint.diagnostics)
            std::fprintf(stderr, "%s:%s\n", cli.path.c_str(),
                         d.toString().c_str());
    }
    const auto program = qb::lang::elaborateSource(source);
    if (cli.dump)
        std::printf("%s", program.circuit.toString().c_str());
    if (!cli.quiet && !cli.json) {
        std::printf("%s: %u qubits, %zu gates\n", cli.path.c_str(),
                    program.circuit.numQubits(),
                    program.circuit.size());
    }
    // Stream per-qubit lines as the engine produces them.
    qb::core::ResultObserver observer;
    if (!cli.quiet && !cli.json)
        observer = printQubitLine;
    const auto result =
        qb::core::verifyAll(program, options, observer, cli.clean);
    if (cli.json) {
        std::printf("%s",
                    qb::core::toJson(result, cli.path).c_str());
    } else {
        std::printf("%s\n", result.summary().c_str());
    }
    return result.allSafe() ? 0 : 1;
}

// ----------------------------------------------------------- server mode

std::atomic<bool> g_stop{false};

void
onStopSignal(int)
{
    g_stop.store(true, std::memory_order_release);
}

int
runServer(const CliOptions &cli)
{
    qb::server::ServerOptions options;
    options.socketPath = cli.servePath;
    options.tcpAddress = cli.serveTcp;
    options.authToken = resolveToken(cli);
    options.engine = engineOptionsFor(cli);
    options.checkCleanAncillas = cli.clean;
    options.queueCapacity = static_cast<std::size_t>(cli.queue);
    options.concurrency = static_cast<unsigned>(cli.parallel);
    options.jobs = static_cast<unsigned>(cli.jobs);
    options.maxConnections =
        static_cast<std::size_t>(cli.maxConnections);
    options.maxInflightPerConnection =
        static_cast<std::size_t>(cli.maxInflight);
    options.idleTimeoutSeconds =
        static_cast<unsigned>(cli.idleTimeout);
    options.programCacheCapacity =
        static_cast<std::size_t>(cli.programCache);
    options.resultCacheCapacity =
        static_cast<std::size_t>(cli.resultCache);
    const bool authed = !options.authToken.empty();

    qb::server::Server server(std::move(options));
    std::signal(SIGINT, onStopSignal);
    std::signal(SIGTERM, onStopSignal);
    std::string endpoints;
    if (!server.socketPath().empty())
        endpoints = server.socketPath();
    if (!server.tcpEndpoint().empty()) {
        if (!endpoints.empty())
            endpoints += " and ";
        endpoints += "tcp:" + server.tcpEndpoint();
    }
    qb::inform(qb::format(
        "qborrow server listening on %s (parallel %ld, queue %ld%s)",
        endpoints.c_str(), cli.parallel, cli.queue,
        authed ? ", auth required" : ""));
    server.run(&g_stop); // returns after the graceful drain
    const auto counters = server.counters();
    qb::inform(qb::format(
        "qborrow server exiting: %llu request(s) served, %llu "
        "cancelled, %llu rejected, %llu error(s)",
        static_cast<unsigned long long>(counters.served),
        static_cast<unsigned long long>(counters.cancelled),
        static_cast<unsigned long long>(counters.rejected),
        static_cast<unsigned long long>(counters.errors)));
    return 0;
}

// ----------------------------------------------------------- client mode

int
connectTo(const std::string &path)
{
    sockaddr_un addr{};
    addr.sun_family = AF_UNIX;
    if (path.size() >= sizeof(addr.sun_path))
        qb::fatal("socket path too long: " + path);
    std::memcpy(addr.sun_path, path.c_str(), path.size() + 1);
    const int fd = ::socket(AF_UNIX, SOCK_STREAM | SOCK_CLOEXEC, 0);
    if (fd < 0)
        qb::fatal(std::string("cannot create socket: ") +
                  std::strerror(errno));
    if (::connect(fd, reinterpret_cast<sockaddr *>(&addr),
                  sizeof(addr)) < 0) {
        const std::string msg = std::string("cannot connect to '") +
                                path + "': " + std::strerror(errno);
        ::close(fd);
        qb::fatal(msg);
    }
    return fd;
}

int
connectTcp(const std::string &host_port)
{
    const std::size_t colon = host_port.rfind(':');
    if (colon == std::string::npos || colon + 1 >= host_port.size())
        qb::fatal("TCP address must be host:port, got '" +
                  host_port + "'");
    std::string host = host_port.substr(0, colon);
    const std::string port = host_port.substr(colon + 1);
    if (host.size() >= 2 && host.front() == '[' && host.back() == ']')
        host = host.substr(1, host.size() - 2);
    if (host.empty())
        host = "127.0.0.1";

    addrinfo hints{};
    hints.ai_family = AF_UNSPEC;
    hints.ai_socktype = SOCK_STREAM;
    addrinfo *results = nullptr;
    const int rc =
        ::getaddrinfo(host.c_str(), port.c_str(), &hints, &results);
    if (rc != 0)
        qb::fatal("cannot resolve '" + host_port +
                  "': " + ::gai_strerror(rc));
    int fd = -1;
    std::string last_error = "no usable address";
    for (addrinfo *ai = results; ai != nullptr; ai = ai->ai_next) {
        fd = ::socket(ai->ai_family, ai->ai_socktype | SOCK_CLOEXEC,
                      ai->ai_protocol);
        if (fd < 0) {
            last_error = std::strerror(errno);
            continue;
        }
        if (::connect(fd, ai->ai_addr, ai->ai_addrlen) == 0)
            break;
        last_error = std::strerror(errno);
        ::close(fd);
        fd = -1;
    }
    ::freeaddrinfo(results);
    if (fd < 0)
        qb::fatal("cannot connect to '" + host_port +
                  "': " + last_error);
    return fd;
}

void
sendLine(int fd, std::string line)
{
    line += '\n';
    std::size_t sent = 0;
    while (sent < line.size()) {
        const ssize_t n = ::send(fd, line.data() + sent,
                                 line.size() - sent, MSG_NOSIGNAL);
        if (n <= 0) {
            if (n < 0 && errno == EINTR)
                continue;
            qb::fatal("connection lost while sending request");
        }
        sent += static_cast<std::size_t>(n);
    }
}

/** Read one '\n'-terminated line (without the terminator); false on
 *  EOF. */
bool
readLine(int fd, std::string &buffer, std::string &line)
{
    std::size_t eol;
    while ((eol = buffer.find('\n')) == std::string::npos) {
        char chunk[4096];
        const ssize_t n = ::read(fd, chunk, sizeof(chunk));
        if (n < 0 && errno == EINTR)
            continue;
        if (n <= 0)
            return false;
        buffer.append(chunk, static_cast<std::size_t>(n));
    }
    line = buffer.substr(0, eol);
    buffer.erase(0, eol + 1);
    return true;
}

/** Rebuild the local per-qubit text line from a `qubit` response. */
void
printQubitJson(const qb::server::JsonValue &q)
{
    using qb::server::JsonValue;
    const JsonValue *name = q.find("name");
    const JsonValue *verdict = q.find("verdict");
    std::printf("  %-10s %s",
                name ? name->asString().c_str() : "?",
                verdict ? verdict->asString().c_str() : "?");
    if (verdict && verdict->asString() == "unsafe") {
        const JsonValue *failed = q.find("failed_condition");
        std::printf(" (%s restoration violated)",
                    failed &&
                            failed->asString() == "zero-restoration"
                        ? "|0>"
                        : "|+>");
    }
    if (const JsonValue *lane = q.find("lane");
        lane && lane->kind() == JsonValue::Kind::Number)
        std::printf(" [lane %c]",
                    static_cast<char>('A' + lane->asInt()));
    std::printf("\n");
    if (const JsonValue *cex = q.find("counterexample");
        cex && cex->kind() == JsonValue::Kind::Array) {
        std::printf("    counterexample input:");
        for (const JsonValue &bit : cex->items())
            std::printf(" %d", bit.asInt() != 0 ? 1 : 0);
        std::printf("\n");
    }
}

int
runClient(const CliOptions &cli)
{
    using qb::server::JsonValue;
    const int fd = cli.connectTcp.empty()
        ? connectTo(cli.connectPath)
        : connectTcp(cli.connectTcp);

    // When a token is available, authenticate before anything else -
    // a token-protected daemon rejects every other op first.
    const std::string token = resolveToken(cli);
    if (!token.empty()) {
        sendLine(fd, "{\"op\": \"auth\", \"id\": 0, \"token\": \"" +
                         qb::jsonEscape(token) + "\"}");
        std::string buffer, line;
        bool acknowledged = false;
        while (!acknowledged && readLine(fd, buffer, line)) {
            const JsonValue doc = JsonValue::parse(line);
            const JsonValue *type = doc.find("type");
            if (!type || type->asString() != "auth")
                continue;
            acknowledged = true;
            if (const JsonValue *ok = doc.find("ok");
                !ok || !ok->asBool(false)) {
                ::close(fd);
                qb::fatal("server rejected the auth token");
            }
        }
        if (!acknowledged) {
            ::close(fd);
            qb::fatal("connection closed during authentication");
        }
        if (!buffer.empty())
            qb::warn("unexpected data before the auth ack");
    }

    if (cli.stats) {
        sendLine(fd, "{\"op\": \"stats\", \"id\": 0}");
        std::string buffer, line;
        while (readLine(fd, buffer, line)) {
            const JsonValue doc = JsonValue::parse(line);
            const JsonValue *type = doc.find("type");
            if (type && type->asString() == "error") {
                const JsonValue *message = doc.find("message");
                std::fprintf(stderr, "error: %s\n",
                             message ? message->asString().c_str()
                                     : "server error");
                ::close(fd);
                return 2;
            }
            if (type && type->asString() == "stats") {
                std::printf("%s\n", line.c_str());
                ::close(fd);
                return 0;
            }
        }
        ::close(fd);
        qb::fatal("connection closed before stats arrived");
    }

    if (cli.shutdown_server) {
        sendLine(fd, "{\"op\": \"shutdown\", \"id\": 0}");
        std::string buffer, line;
        // Wait for the ack; the daemon drains before exiting.
        while (readLine(fd, buffer, line)) {
            const JsonValue doc = JsonValue::parse(line);
            const JsonValue *type = doc.find("type");
            if (type && type->asString() == "bye") {
                ::close(fd);
                return 0;
            }
        }
        ::close(fd);
        qb::fatal("connection closed before shutdown was "
                  "acknowledged");
    }

    // Pool size and inprocessing interval are fixed when the daemon
    // starts; passing them here would silently do nothing, so say so.
    if (cli.jobs != 0)
        qb::warn("--jobs is server-wide; ignored in client mode");
    if (cli.inprocess != 16)
        qb::warn("--inprocess is server-wide; ignored in client mode");
    if (cli.adaptive)
        qb::warn("--adaptive-lanes is server-wide; ignored in "
                 "client mode");
    if (!cli.binaryAnalysis)
        qb::warn("--no-binary-analysis is server-wide; ignored in "
                 "client mode");

    const std::string source = readFile(cli.path);
    std::string request = "{\"op\": \"verify\", \"id\": 1";
    request += ", \"name\": \"" + qb::jsonEscape(cli.path) + "\"";
    request += ", \"source\": \"" + qb::jsonEscape(source) + "\"";
    request += ", \"options\": {";
    request += "\"lane\": \"";
    request += cli.portfolio ? "portfolio" : cli.lane;
    request += "\"";
    request += qb::format(", \"clean\": %s",
                          cli.clean ? "true" : "false");
    request += qb::format(", \"counterexample\": %s",
                          cli.want_cex ? "true" : "false");
    request += qb::format(", \"budget\": %lld",
                          static_cast<long long>(cli.budget));
    request += "}}";
    sendLine(fd, request);

    std::string buffer, line;
    int exit_code = 2;
    bool finished = false;
    while (!finished && readLine(fd, buffer, line)) {
        JsonValue doc;
        try {
            doc = JsonValue::parse(line);
        } catch (const qb::FatalError &) {
            continue; // tolerate unknown garbage on the stream
        }
        const JsonValue *type = doc.find("type");
        if (!type)
            continue;
        const std::string &kind = type->asString();
        if (kind == "error") {
            const JsonValue *message = doc.find("message");
            std::fprintf(stderr, "error: %s\n",
                         message ? message->asString().c_str()
                                 : "server error");
            ::close(fd);
            return 2;
        }
        if (kind == "qubit") {
            if (!cli.quiet && !cli.json)
                if (const JsonValue *q = doc.find("qubit"))
                    printQubitJson(*q);
            continue;
        }
        if (kind != "result")
            continue; // accepted / pong / unrelated ids
        finished = true;
        const JsonValue *status = doc.find("status");
        const JsonValue *report = doc.find("report");
        const bool cancelled =
            status && status->asString() == "cancelled";
        bool all_safe = false;
        if (report)
            if (const JsonValue *safe = report->find("all_safe"))
                all_safe = safe->asBool(false);
        if (cli.json) {
            // The final `result` frame verbatim: one line carrying
            // the compact report plus the request status.
            std::printf("%s\n", line.c_str());
        } else {
            const JsonValue *counts =
                report ? report->find("counts") : nullptr;
            const JsonValue *qubits =
                report ? report->find("qubits") : nullptr;
            const JsonValue *seconds =
                report ? report->find("total_seconds") : nullptr;
            const auto at = [&](const char *key) -> long long {
                const JsonValue *v =
                    counts ? counts->find(key) : nullptr;
                return v ? static_cast<long long>(v->asInt()) : 0;
            };
            std::printf(
                "%zu dirty qubit(s): %lld safe, %lld unsafe, %lld "
                "undecided (%.3f s)%s\n",
                qubits ? qubits->items().size() : 0, at("safe"),
                at("unsafe"), at("undecided"),
                seconds ? seconds->asNumber() : 0.0,
                cancelled ? " [cancelled]" : "");
        }
        exit_code = (all_safe && !cancelled) ? 0 : 1;
    }
    ::close(fd);
    if (!finished)
        qb::fatal("connection closed before a result arrived");
    return exit_code;
}

/** Flag scan and mode dispatch.  Throws (qb::FatalError, library
 *  preconditions) instead of exiting; main() owns the catch. */
int
run(int argc, char **argv)
{
    CliOptions cli;
    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        if (arg == "--quiet") {
            cli.quiet = true;
        } else if (arg == "--dump-circuit") {
            cli.dump = true;
        } else if (arg == "--no-cex") {
            cli.want_cex = false;
        } else if (arg == "--portfolio") {
            cli.portfolio = true;
        } else if (arg == "--adaptive-lanes") {
            cli.adaptive = true;
        } else if (arg == "--binary-analysis") {
            cli.binaryAnalysis = true;
        } else if (arg == "--no-binary-analysis") {
            cli.binaryAnalysis = false;
        } else if (arg == "--clean") {
            cli.clean = true;
        } else if (arg == "--lint") {
            cli.lint = true;
        } else if (arg == "--no-lint") {
            cli.noLint = true;
        } else if (arg.rfind("--analysis=", 0) == 0) {
            cli.analysisSpec = arg.substr(std::strlen("--analysis="));
        } else if (arg == "--analysis" && i + 1 < argc) {
            cli.analysisSpec = argv[++i];
        } else if (arg == "--analysis-window" && i + 1 < argc) {
            cli.analysisWindow = std::atol(argv[++i]);
            if (cli.analysisWindow < 0) {
                usage(argv[0]);
                return 2;
            }
        } else if (arg == "--json") {
            cli.json = true;
        } else if (arg == "--shutdown") {
            cli.shutdown_server = true;
        } else if (arg == "--stats") {
            cli.stats = true;
        } else if (arg == "--serve" && i + 1 < argc) {
            cli.servePath = argv[++i];
        } else if (arg == "--serve-tcp" && i + 1 < argc) {
            cli.serveTcp = argv[++i];
        } else if (arg == "--connect" && i + 1 < argc) {
            cli.connectPath = argv[++i];
        } else if (arg == "--connect-tcp" && i + 1 < argc) {
            cli.connectTcp = argv[++i];
        } else if ((arg == "--auth-token" || arg == "--token") &&
                   i + 1 < argc) {
            cli.token = argv[++i];
            cli.tokenSet = true;
        } else if (arg == "--max-connections" && i + 1 < argc) {
            cli.maxConnections = std::atol(argv[++i]);
            if (cli.maxConnections < 0) {
                usage(argv[0]);
                return 2;
            }
        } else if (arg == "--max-inflight" && i + 1 < argc) {
            cli.maxInflight = std::atol(argv[++i]);
            if (cli.maxInflight < 0) {
                usage(argv[0]);
                return 2;
            }
        } else if (arg == "--idle-timeout" && i + 1 < argc) {
            cli.idleTimeout = std::atol(argv[++i]);
            if (cli.idleTimeout < 0) {
                usage(argv[0]);
                return 2;
            }
        } else if (arg == "--program-cache" && i + 1 < argc) {
            cli.programCache = std::atol(argv[++i]);
            if (cli.programCache < 0) {
                usage(argv[0]);
                return 2;
            }
        } else if (arg == "--result-cache" && i + 1 < argc) {
            cli.resultCache = std::atol(argv[++i]);
            if (cli.resultCache < 0) {
                usage(argv[0]);
                return 2;
            }
        } else if (arg == "--lane" && i + 1 < argc) {
            cli.lane = argv[++i];
            if (cli.lane != "A" && cli.lane != "B") {
                usage(argv[0]);
                return 2;
            }
        } else if (arg == "--budget" && i + 1 < argc) {
            cli.budget = std::atoll(argv[++i]);
        } else if (arg == "--jobs" && i + 1 < argc) {
            cli.jobs = std::atol(argv[++i]);
            if (cli.jobs < 1) {
                usage(argv[0]);
                return 2;
            }
        } else if (arg == "--inprocess" && i + 1 < argc) {
            cli.inprocess = std::atol(argv[++i]);
            if (cli.inprocess < 0) {
                usage(argv[0]);
                return 2;
            }
        } else if (arg == "--parallel" && i + 1 < argc) {
            cli.parallel = std::atol(argv[++i]);
            if (cli.parallel < 1) {
                usage(argv[0]);
                return 2;
            }
        } else if (arg == "--queue" && i + 1 < argc) {
            cli.queue = std::atol(argv[++i]);
            if (cli.queue < 1) {
                usage(argv[0]);
                return 2;
            }
        } else if (!arg.empty() && arg[0] == '-') {
            usage(argv[0]);
            return 2;
        } else if (cli.path.empty()) {
            cli.path = arg;
        } else {
            usage(argv[0]);
            return 2;
        }
    }
    const bool serve =
        !cli.servePath.empty() || !cli.serveTcp.empty();
    const bool connect =
        !cli.connectPath.empty() || !cli.connectTcp.empty();
    if (serve && connect) {
        usage(argv[0]);
        return 2;
    }
    if (!cli.connectPath.empty() && !cli.connectTcp.empty()) {
        usage(argv[0]);
        return 2;
    }
    if (serve && !cli.path.empty()) {
        usage(argv[0]);
        return 2;
    }
    if ((cli.shutdown_server || cli.stats) && !connect) {
        usage(argv[0]);
        return 2;
    }
    if (!serve && !cli.shutdown_server && !cli.stats &&
        cli.path.empty()) {
        usage(argv[0]);
        return 2;
    }
    // Lint is a local, frontend-only mode.
    if (cli.lint && (serve || connect)) {
        usage(argv[0]);
        return 2;
    }

    if (serve)
        return runServer(cli);
    if (connect)
        return runClient(cli);
    if (cli.lint)
        return runLint(cli);
    return runLocal(cli);
}

} // namespace

int
main(int argc, char **argv)
{
    // Exceptions never escape main - including from the argument
    // scan, not just the mode dispatch.
    try {
        return run(argc, argv);
    } catch (const qb::FatalError &e) {
        // User errors - unreadable input, an unwritable/busy socket
        // path, a program that fails to parse - exit with ONE clean
        // line on stderr, never an unhandled throw.
        std::fprintf(stderr, "error: %s\n", e.what());
        return 2;
    } catch (const std::exception &e) {
        // Library preconditions (std::invalid_argument from the
        // generators and friends) surface as clean CLI errors, not
        // crashes.
        std::fprintf(stderr, "error: %s\n", e.what());
        return 2;
    }
}
