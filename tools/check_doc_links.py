#!/usr/bin/env python3
"""Fail on dead relative links in the repo's markdown docs.

Scans README.md and docs/*.md (plus any extra paths given on the
command line) for markdown links and images, and checks that every
RELATIVE target resolves to an existing file or directory, relative to
the file containing the link.  External schemes (http/https/mailto)
and pure in-page anchors (#...) are not checked.

Run from anywhere inside the repository:

    python3 tools/check_doc_links.py

Exit status: 0 when every relative link resolves, 1 otherwise (each
dead link is listed as file:line: target).  CI runs this as the
docs-link-check step.
"""

import re
import sys
from pathlib import Path

# Inline links/images: [text](target) / ![alt](target).  Targets with
# spaces or an optional "title" part are cut at the first whitespace.
LINK_RE = re.compile(r"!?\[[^\]]*\]\(([^)\s]+)[^)]*\)")
SKIP_SCHEMES = ("http://", "https://", "mailto:", "ftp://")


def doc_files(repo_root: Path, extra: list[str]) -> list[Path]:
    files = []
    readme = repo_root / "README.md"
    if readme.exists():
        files.append(readme)
    files.extend(sorted((repo_root / "docs").glob("*.md")))
    files.extend(Path(p) for p in extra)
    return files


def check_file(path: Path) -> list[str]:
    failures = []
    in_code_fence = False
    for lineno, line in enumerate(
            path.read_text(encoding="utf-8").splitlines(), start=1):
        # C++ lambdas like [](const X &x) inside fenced code blocks
        # look exactly like markdown links; skip fenced regions.
        if line.lstrip().startswith("```"):
            in_code_fence = not in_code_fence
            continue
        if in_code_fence:
            continue
        for match in LINK_RE.finditer(line):
            target = match.group(1)
            if target.startswith(SKIP_SCHEMES):
                continue
            if target.startswith("#"):
                continue  # in-page anchor
            target = target.split("#", 1)[0]  # strip anchors
            if not target:
                continue
            resolved = (path.parent / target).resolve()
            if not resolved.exists():
                failures.append(f"{path}:{lineno}: dead link "
                                f"-> {match.group(1)}")
    return failures


def main() -> int:
    repo_root = Path(__file__).resolve().parent.parent
    files = doc_files(repo_root, sys.argv[1:])
    if not files:
        print("check_doc_links: no markdown files found",
              file=sys.stderr)
        return 1
    failures = []
    checked = 0
    for path in files:
        failures.extend(check_file(path))
        checked += 1
    if failures:
        print("\n".join(failures), file=sys.stderr)
        print(f"check_doc_links: {len(failures)} dead link(s) in "
              f"{checked} file(s)", file=sys.stderr)
        return 1
    print(f"check_doc_links: OK ({checked} file(s))")
    return 0


if __name__ == "__main__":
    sys.exit(main())
