/**
 * @file
 * qbsat: the in-tree CDCL solver as a standalone DIMACS tool.
 *
 * `qbsat --dimacs file.cnf` (or a bare positional path; "-" reads
 * stdin) streams the file through the strict located DIMACS reader
 * (sat/dimacs.h), decides it with the full sat::Solver - solve-entry
 * binary-implication-graph analysis, vivification/subsumption
 * inprocessing, OTF subsumption, the works - and prints the result
 * SAT-competition style: "s SATISFIABLE" plus "v" model lines, or
 * "s UNSATISFIABLE".  Exit codes follow the competition convention:
 * 10 = SAT, 20 = UNSAT, 0 = unknown (conflict budget exhausted), and
 * 2 for usage or input errors - a malformed file is one located line
 * on stderr ("error: file.cnf:3:7: ..."), never a crash.  Every
 * model is re-validated against the clause list before printing.
 */

#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <string>

#include "sat/dimacs.h"
#include "sat/solver.h"
#include "support/logging.h"

namespace {

[[nodiscard]] int
usage(const char *argv0)
{
    std::fprintf(stderr,
                 "usage: %s [--dimacs] [--simplify] [--stats] "
                 "[--budget N] file.cnf (or - for stdin)\n",
                 argv0);
    return 2;
}

/** Print the model competition-style: "v" lines capped near 78
 *  columns, terminated by the literal 0. */
void
printModel(const qb::sat::Solver &solver, qb::sat::Var num_vars)
{
    std::string line = "v";
    auto flush_if_long = [&line] {
        if (line.size() >= 74) {
            std::printf("%s\n", line.c_str());
            line = "v";
        }
    };
    for (qb::sat::Var v = 0; v < num_vars; ++v) {
        const bool value =
            solver.modelValue(v) == qb::sat::LBool::True;
        line += ' ';
        line += std::to_string((value ? 1 : -1) * (v + 1));
        flush_if_long();
    }
    std::printf("%s 0\n", line.c_str());
}

/** Flag scan, streamed DIMACS read, solve, print. */
int
run(int argc, char **argv)
{
    std::string path;
    bool simplify = false;
    bool stats = false;
    std::int64_t budget = -1;
    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        if (arg == "--simplify") {
            simplify = true;
        } else if (arg == "--stats") {
            stats = true;
        } else if (arg == "--budget" && i + 1 < argc) {
            budget = std::atoll(argv[++i]);
        } else if (arg == "--dimacs" && i + 1 < argc &&
                   path.empty()) {
            path = argv[++i];
        } else if (arg == "--help" || arg == "-h") {
            return usage(argv[0]);
        } else if (path.empty() && (arg == "-" || arg[0] != '-')) {
            path = arg;
        } else {
            return usage(argv[0]);
        }
    }
    if (path.empty())
        return usage(argv[0]);
    // Build the config only after the flag scan: presets and tweaks
    // compose in any order (previously `--budget N --simplify` lost
    // the budget because the preset replaced the whole config).
    qb::sat::SolverConfig config = simplify
        ? qb::sat::SolverConfig::simplify()
        : qb::sat::SolverConfig::baseline();
    config.conflictBudget = budget;

    // Stream straight from the file (or stdin): the strict reader
    // never needs the whole text in memory, and a malformed file is
    // a located error, not an exception or a crash.
    qb::sat::DimacsResult parsed;
    std::string label = path;
    if (path == "-") {
        label = "<stdin>";
        parsed = qb::sat::readDimacs(std::cin);
    } else {
        std::ifstream in(path, std::ios::binary);
        if (!in) {
            std::fprintf(stderr, "error: cannot open '%s'\n",
                         path.c_str());
            return 2;
        }
        parsed = qb::sat::readDimacs(in);
    }
    if (!parsed.ok) {
        std::fprintf(stderr, "error: %s:%s\n", label.c_str(),
                     parsed.error.str().c_str());
        return 2;
    }

    const qb::sat::Cnf &cnf = parsed.cnf;
    qb::sat::Solver solver(config);
    solver.addCnf(cnf);
    // One explicit inprocessing pass before search puts the whole
    // slice-boundary machinery (vivification, backward subsumption,
    // binary-graph passes) on the standalone-CNF path too; solve()
    // entry then re-runs the binary-graph analysis as usual.
    solver.inprocess();
    const qb::sat::SolveResult result = solver.solve();
    if (stats) {
        const auto &s = solver.stats();
        std::printf("c conflicts %lld decisions %lld "
                    "propagations %lld restarts %lld "
                    "eliminated %lld\n",
                    static_cast<long long>(s.conflicts),
                    static_cast<long long>(s.decisions),
                    static_cast<long long>(s.propagations),
                    static_cast<long long>(s.restarts),
                    static_cast<long long>(s.eliminatedVars));
        std::printf("c otf-strengthened %lld otf-skipped %lld "
                    "otf-deferred-applied %lld\n",
                    static_cast<long long>(s.otfStrengthenedClauses),
                    static_cast<long long>(s.otfSkipped),
                    static_cast<long long>(s.otfDeferredApplied));
        std::printf("c scc-merged %lld probed-failed %lld "
                    "hyper-binaries %lld "
                    "transitive-reduced %lld\n",
                    static_cast<long long>(s.sccMergedVars),
                    static_cast<long long>(s.probedFailed),
                    static_cast<long long>(s.hyperBinaries),
                    static_cast<long long>(s.transitiveReduced));
    }
    switch (result) {
      case qb::sat::SolveResult::Sat: {
        std::vector<qb::sat::LBool> model(cnf.numVars());
        for (qb::sat::Var v = 0; v < cnf.numVars(); ++v)
            model[v] = solver.modelValue(v);
        std::size_t failed = 0;
        if (!qb::sat::validateModel(cnf.clauses(), model, &failed)) {
            // A Sat verdict whose model violates a clause is a
            // solver bug; report it instead of printing a lie.
            std::fprintf(stderr,
                         "error: %s: solver model violates clause "
                         "%zu (internal error)\n",
                         label.c_str(), failed);
            return 1;
        }
        std::printf("s SATISFIABLE\n");
        printModel(solver, cnf.numVars());
        return 10;
      }
      case qb::sat::SolveResult::Unsat:
        std::printf("s UNSATISFIABLE\n");
        return 20;
      case qb::sat::SolveResult::Unknown:
        std::printf("s UNKNOWN\n");
        return 0;
    }
    return 0;
}

} // namespace

int
main(int argc, char **argv)
{
    // Exceptions never escape main: any residual throw is a clean
    // one-line error and exit 2, not an unhandled abort.
    try {
        return run(argc, argv);
    } catch (const qb::FatalError &e) {
        std::fprintf(stderr, "error: %s\n", e.what());
        return 2;
    } catch (const std::exception &e) {
        std::fprintf(stderr, "error: %s\n", e.what());
        return 2;
    }
}
