/**
 * @file
 * qbsat: the in-tree CDCL solver as a standalone DIMACS tool.
 *
 * Reads a DIMACS CNF file (or stdin with "-"), decides it, and prints
 * the result in the SAT-competition style ("s SATISFIABLE" plus a
 * "v" model line, or "s UNSATISFIABLE").  Exit codes follow the
 * competition convention: 10 = SAT, 20 = UNSAT, 0 = unknown.
 */

#include <cstdio>
#include <cstring>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>

#include "sat/solver.h"
#include "support/logging.h"

namespace {

/** Flag scan, DIMACS read, solve, print.  Throws (qb::FatalError
 *  from a malformed CNF) instead of exiting; main() owns the catch. */
int
run(int argc, char **argv)
{
    std::string path;
    bool simplify = false;
    bool stats = false;
    std::int64_t budget = -1;
    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        if (arg == "--simplify") {
            simplify = true;
        } else if (arg == "--stats") {
            stats = true;
        } else if (arg == "--budget" && i + 1 < argc) {
            budget = std::atoll(argv[++i]);
        } else if (path.empty()) {
            path = arg;
        } else {
            std::fprintf(stderr,
                         "usage: %s [--simplify] [--stats] "
                         "[--budget N] file.cnf\n",
                         argv[0]);
            return 2;
        }
    }
    if (path.empty()) {
        std::fprintf(stderr, "usage: %s file.cnf (or - for stdin)\n",
                     argv[0]);
        return 2;
    }
    // Build the config only after the flag scan: presets and tweaks
    // compose in any order (previously `--budget N --simplify` lost
    // the budget because the preset replaced the whole config).
    qb::sat::SolverConfig config = simplify
        ? qb::sat::SolverConfig::simplify()
        : qb::sat::SolverConfig::baseline();
    config.conflictBudget = budget;

    std::string text;
    if (path == "-") {
        std::ostringstream buf;
        buf << std::cin.rdbuf();
        text = buf.str();
    } else {
        std::ifstream in(path);
        if (!in) {
            std::fprintf(stderr, "error: cannot open '%s'\n",
                         path.c_str());
            return 2;
        }
        std::ostringstream buf;
        buf << in.rdbuf();
        text = buf.str();
    }

    {
        const qb::sat::Cnf cnf = qb::sat::Cnf::fromDimacs(text);
        qb::sat::Solver solver(config);
        solver.addCnf(cnf);
        const qb::sat::SolveResult result = solver.solve();
        if (stats) {
            const auto &s = solver.stats();
            std::printf("c conflicts %lld decisions %lld "
                        "propagations %lld restarts %lld "
                        "eliminated %lld\n",
                        static_cast<long long>(s.conflicts),
                        static_cast<long long>(s.decisions),
                        static_cast<long long>(s.propagations),
                        static_cast<long long>(s.restarts),
                        static_cast<long long>(s.eliminatedVars));
            std::printf("c otf-strengthened %lld otf-skipped %lld "
                        "otf-deferred-applied %lld\n",
                        static_cast<long long>(
                            s.otfStrengthenedClauses),
                        static_cast<long long>(s.otfSkipped),
                        static_cast<long long>(
                            s.otfDeferredApplied));
            std::printf("c scc-merged %lld probed-failed %lld "
                        "hyper-binaries %lld "
                        "transitive-reduced %lld\n",
                        static_cast<long long>(s.sccMergedVars),
                        static_cast<long long>(s.probedFailed),
                        static_cast<long long>(s.hyperBinaries),
                        static_cast<long long>(
                            s.transitiveReduced));
        }
        switch (result) {
          case qb::sat::SolveResult::Sat: {
            std::printf("s SATISFIABLE\nv");
            for (qb::sat::Var v = 0; v < cnf.numVars(); ++v) {
                const bool value =
                    solver.modelValue(v) == qb::sat::LBool::True;
                std::printf(" %d", (value ? 1 : -1) * (v + 1));
            }
            std::printf(" 0\n");
            return 10;
          }
          case qb::sat::SolveResult::Unsat:
            std::printf("s UNSATISFIABLE\n");
            return 20;
          case qb::sat::SolveResult::Unknown:
            std::printf("s UNKNOWN\n");
            return 0;
        }
    }
    return 0;
}

} // namespace

int
main(int argc, char **argv)
{
    // Exceptions never escape main: a malformed DIMACS file is a
    // clean one-line error and exit 2, not an unhandled throw.
    try {
        return run(argc, argv);
    } catch (const qb::FatalError &e) {
        std::fprintf(stderr, "error: %s\n", e.what());
        return 2;
    } catch (const std::exception &e) {
        std::fprintf(stderr, "error: %s\n", e.what());
        return 2;
    }
}
